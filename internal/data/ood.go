package data

import (
	"safexplain/internal/prng"
	"safexplain/internal/tensor"
)

// Out-of-distribution and fault operators. Supervisors (T1) are evaluated
// on their ability to flag these; the safety patterns (T3) use them as the
// sensor-fault model. Each operator returns a new Set and leaves the input
// untouched.

// WithGaussianNoise returns a copy of s with extra additive Gaussian noise
// of the given sigma — the degraded-sensor OOD condition.
func WithGaussianNoise(s *Set, sigma float64, seed uint64) *Set {
	r := prng.New(seed)
	out := &Set{Name: s.Name + "/noise", Classes: s.Classes}
	for _, smp := range s.Samples {
		x := smp.X.Clone()
		for i, v := range x.Data() {
			f := float64(v) + r.NormFloat64()*sigma
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			x.Data()[i] = float32(f)
		}
		out.Samples = append(out.Samples, Sample{X: x, Label: smp.Label})
	}
	return out
}

// WithOcclusion returns a copy of s with a size×size patch forced to a
// constant value at a random position per image — the blocked-lens / dirt
// OOD condition.
func WithOcclusion(s *Set, size int, seed uint64) *Set {
	r := prng.New(seed)
	out := &Set{Name: s.Name + "/occluded", Classes: s.Classes}
	if size > Side {
		size = Side
	}
	for _, smp := range s.Samples {
		x := smp.X.Clone()
		ox := r.Intn(Side - size + 1)
		oy := r.Intn(Side - size + 1)
		for y := oy; y < oy+size; y++ {
			for dx := ox; dx < ox+size; dx++ {
				x.Data()[y*Side+dx] = 0
			}
		}
		out.Samples = append(out.Samples, Sample{X: x, Label: smp.Label})
	}
	return out
}

// WithInversion returns a copy of s with inverted intensities — a gross
// sensor-failure condition (e.g. exposure fault) far outside the training
// distribution.
func WithInversion(s *Set) *Set {
	out := &Set{Name: s.Name + "/inverted", Classes: s.Classes}
	for _, smp := range s.Samples {
		x := smp.X.Clone()
		for i, v := range x.Data() {
			x.Data()[i] = 1 - v
		}
		out.Samples = append(out.Samples, Sample{X: x, Label: smp.Label})
	}
	return out
}

// UnseenClass generates images of a shape family none of the case studies
// contain (diagonal crosses on clutter) — the semantic-novelty OOD
// condition. Labels are set to -1: no in-distribution answer is correct.
func UnseenClass(n int, noise float64, seed uint64) *Set {
	r := prng.New(seed)
	s := &Set{Name: "unseen", Classes: []string{"unseen"}}
	for i := 0; i < n; i++ {
		var c canvas
		x := 3 + r.Intn(8)
		y := 3 + r.Intn(8)
		arm := 2 + r.Intn(3)
		c.line(x-arm, y-arm, x+arm, y+arm, 0.9)
		c.line(x-arm, y+arm, x+arm, y-arm, 0.9)
		for k := 0; k < r.Intn(4); k++ {
			c.set(r.Intn(Side), r.Intn(Side), 0.3+0.3*r.Float32())
		}
		s.Samples = append(s.Samples, Sample{X: c.finish(noise, r), Label: -1})
	}
	return s
}

// FlipPixels flips nFlips random pixels of x to their complement, in
// place — the single-event-upset model for sensor memory used by fault
// injection. It returns the flipped indices for test assertions.
func FlipPixels(x *tensor.Tensor, nFlips int, r *prng.Source) []int {
	idx := make([]int, 0, nFlips)
	for k := 0; k < nFlips; k++ {
		i := r.Intn(x.Len())
		x.Data()[i] = 1 - x.Data()[i]
		idx = append(idx, i)
	}
	return idx
}

// OODKind names one OOD condition for experiment sweeps.
type OODKind struct {
	Name  string
	Apply func(s *Set, seed uint64) *Set
}

// OODKinds returns the standard four OOD conditions used by experiment T1.
func OODKinds() []OODKind {
	return []OODKind{
		{Name: "noise", Apply: func(s *Set, seed uint64) *Set {
			return WithGaussianNoise(s, 0.3, seed)
		}},
		{Name: "occlusion", Apply: func(s *Set, seed uint64) *Set {
			return WithOcclusion(s, 8, seed)
		}},
		{Name: "inversion", Apply: func(s *Set, seed uint64) *Set {
			return WithInversion(s)
		}},
		{Name: "unseen", Apply: func(s *Set, seed uint64) *Set {
			return UnseenClass(s.Len(), 0.05, seed)
		}},
	}
}
