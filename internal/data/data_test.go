package data

import (
	"testing"
)

func TestGeneratorsBasicShape(t *testing.T) {
	for _, cs := range CaseStudies() {
		s := cs.Generate(Config{N: 40, Seed: 1, Noise: 0.05})
		if s.Len() != 40 {
			t.Errorf("%s: Len = %d", cs.Name, s.Len())
		}
		if s.NumClasses() < 3 {
			t.Errorf("%s: only %d classes", cs.Name, s.NumClasses())
		}
		for i := 0; i < s.Len(); i++ {
			x, label := s.Sample(i)
			if x.Rank() != 3 || x.Dim(0) != 1 || x.Dim(1) != Side || x.Dim(2) != Side {
				t.Fatalf("%s: bad shape %v", cs.Name, x.Shape())
			}
			if label < 0 || label >= s.NumClasses() {
				t.Fatalf("%s: label %d out of range", cs.Name, label)
			}
			for _, v := range x.Data() {
				if v < 0 || v > 1 {
					t.Fatalf("%s: pixel %v out of [0,1]", cs.Name, v)
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, cs := range CaseStudies() {
		a := cs.Generate(Config{N: 20, Seed: 5, Noise: 0.05})
		b := cs.Generate(Config{N: 20, Seed: 5, Noise: 0.05})
		if a.Hash() != b.Hash() {
			t.Errorf("%s: same seed gave different datasets", cs.Name)
		}
		c := cs.Generate(Config{N: 20, Seed: 6, Noise: 0.05})
		if a.Hash() == c.Hash() {
			t.Errorf("%s: different seeds gave identical datasets", cs.Name)
		}
	}
}

func TestClassesBalanced(t *testing.T) {
	s := Automotive(Config{N: 100, Seed: 2})
	counts := s.ClassCounts()
	for cls, n := range counts {
		if n != 25 {
			t.Errorf("class %d count %d, want 25", cls, n)
		}
	}
}

func TestClassesVisuallyDistinct(t *testing.T) {
	// Mean images of different classes must differ substantially —
	// otherwise the task is unlearnable and every downstream experiment
	// degenerates.
	for _, cs := range CaseStudies() {
		s := cs.Generate(Config{N: 120, Seed: 3, Noise: 0})
		k := s.NumClasses()
		means := make([][]float32, k)
		counts := make([]int, k)
		for i := range means {
			means[i] = make([]float32, Side*Side)
		}
		for _, smp := range s.Samples {
			counts[smp.Label]++
			for j, v := range smp.X.Data() {
				means[smp.Label][j] += v
			}
		}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				var dist float64
				for j := range means[a] {
					d := float64(means[a][j])/float64(counts[a]) - float64(means[b][j])/float64(counts[b])
					dist += d * d
				}
				if dist < 0.5 {
					t.Errorf("%s: classes %d and %d nearly identical (dist² %v)", cs.Name, a, b, dist)
				}
			}
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	s := Railway(Config{N: 100, Seed: 4})
	train, test := s.Split(0.8, 7)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Deterministic under the same seed.
	train2, _ := s.Split(0.8, 7)
	if train.Hash() != train2.Hash() {
		t.Fatal("split not deterministic")
	}
	// Different seed permutes differently.
	train3, _ := s.Split(0.8, 8)
	if train.Hash() == train3.Hash() {
		t.Fatal("different split seeds gave identical partitions")
	}
}

func TestHashSensitivity(t *testing.T) {
	s := Space(Config{N: 10, Seed: 9})
	h := s.Hash()
	s.Samples[0].X.Data()[0] += 0.001
	if s.Hash() == h {
		t.Fatal("hash insensitive to pixel change")
	}
}

func TestMerge(t *testing.T) {
	a := Automotive(Config{N: 10, Seed: 1})
	b := Automotive(Config{N: 10, Seed: 2})
	m, err := Merge("both", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 20 {
		t.Fatalf("merged len %d", m.Len())
	}
	if _, err := Merge("bad", a, Railway(Config{N: 5, Seed: 1})); err == nil {
		t.Fatal("merging different class lists should error")
	}
	if _, err := Merge("none"); err == nil {
		t.Fatal("merging nothing should error")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := Automotive(Config{N: 0, Seed: 1, Noise: -1})
	if s.Len() != 100 {
		t.Fatalf("default N not applied: %d", s.Len())
	}
}

func TestAutomotiveDetect(t *testing.T) {
	s := AutomotiveDetect(Config{N: 60, Seed: 30, Noise: 0.05})
	if s.Len() != 60 || len(s.Classes) != 3 {
		t.Fatalf("len %d classes %d", s.Len(), len(s.Classes))
	}
	for i := 0; i < s.Len(); i++ {
		x, class, cx, cy := s.DetAt(i)
		if x.Len() != Side*Side {
			t.Fatal("bad image shape")
		}
		if class < 0 || class > 2 {
			t.Fatalf("class %d", class)
		}
		if cx < 0 || cx > 1 || cy < 0 || cy > 1 {
			t.Fatalf("centroid (%v,%v) outside [0,1]", cx, cy)
		}
		// The centroid must sit on or near bright object pixels: mean
		// intensity in a 3px window around it must exceed the global mean.
		px, py := int(cx*Side), int(cy*Side)
		var local, localN, global float64
		for _, v := range x.Data() {
			global += float64(v)
		}
		global /= float64(x.Len())
		for dy := -2; dy <= 2; dy++ {
			for dx := -2; dx <= 2; dx++ {
				xx, yy := px+dx, py+dy
				if xx < 0 || xx >= Side || yy < 0 || yy >= Side {
					continue
				}
				local += float64(x.At3(0, yy, xx))
				localN++
			}
		}
		if local/localN <= global {
			t.Fatalf("sample %d: centroid (%d,%d) not on the object", i, px, py)
		}
	}
	// Deterministic.
	if AutomotiveDetect(Config{N: 20, Seed: 31}).Hash() != AutomotiveDetect(Config{N: 20, Seed: 31}).Hash() {
		t.Fatal("detection set not deterministic")
	}
}

func TestDetSetSplit(t *testing.T) {
	s := AutomotiveDetect(Config{N: 40, Seed: 32})
	train, test := s.Split(0.75, 33)
	if train.Len() != 30 || test.Len() != 10 {
		t.Fatalf("split %d/%d", train.Len(), test.Len())
	}
	// Classification view agrees with detection view.
	x1, c1 := train.Sample(0)
	x2, c2, _, _ := train.DetAt(0)
	if x1 != x2 || c1 != c2 {
		t.Fatal("Sample and DetAt disagree")
	}
}
