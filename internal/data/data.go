// Package data generates the synthetic case studies standing in for the
// SAFEXPLAIN project's proprietary use cases (see DESIGN.md, substitution
// table): an automotive perception task, a space vision-navigation task,
// and a railway obstacle/signal task.
//
// Each generator renders small grayscale images of parameterized geometric
// scenes with controlled noise, so datasets are fully reproducible from a
// seed, have known ground truth, and expose the structure the safety
// machinery needs: class imbalance knobs, an in-distribution/out-of-
// distribution boundary, and graded corruption operators for fault
// injection. Every set carries a SHA-256 manifest hash so the traceability
// log can pin exactly which data trained or tested a model.
package data

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"safexplain/internal/prng"
	"safexplain/internal/tensor"
)

// Side is the image edge length for all case studies: 16×16 single-channel.
const Side = 16

// Sample is one labelled image.
type Sample struct {
	X     *tensor.Tensor // shape [1, Side, Side], values in [0, 1]
	Label int
}

// Set is a named, labelled dataset. It implements nn.Dataset.
type Set struct {
	Name    string
	Classes []string
	Samples []Sample
}

// Len implements nn.Dataset.
func (s *Set) Len() int { return len(s.Samples) }

// Sample implements nn.Dataset.
func (s *Set) Sample(i int) (*tensor.Tensor, int) {
	return s.Samples[i].X, s.Samples[i].Label
}

// NumClasses returns the number of classes.
func (s *Set) NumClasses() int { return len(s.Classes) }

// Limit returns a view over the first n samples (s itself when n is out
// of range) — a bounded frame stream for operate harnesses.
func Limit(s *Set, n int) *Set {
	if n < 0 || n >= len(s.Samples) {
		return s
	}
	return &Set{Name: s.Name, Classes: s.Classes, Samples: s.Samples[:n]}
}

// Hash returns the hex SHA-256 over the set's name, class list, labels and
// pixel data — the dataset identity recorded in evidence logs.
func (s *Set) Hash() string {
	h := sha256.New()
	h.Write([]byte(s.Name))
	for _, c := range s.Classes {
		h.Write([]byte{0})
		h.Write([]byte(c))
	}
	var b [4]byte
	for _, smp := range s.Samples {
		binary.LittleEndian.PutUint32(b[:], uint32(smp.Label))
		h.Write(b[:])
		for _, v := range smp.X.Data() {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			h.Write(b[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Split partitions the set into a training and a test set with the given
// training fraction, after a deterministic shuffle driven by seed.
func (s *Set) Split(trainFrac float64, seed uint64) (train, test *Set) {
	r := prng.New(seed)
	perm := r.Perm(len(s.Samples))
	nTrain := int(trainFrac * float64(len(s.Samples)))
	train = &Set{Name: s.Name + "/train", Classes: s.Classes}
	test = &Set{Name: s.Name + "/test", Classes: s.Classes}
	for i, idx := range perm {
		if i < nTrain {
			train.Samples = append(train.Samples, s.Samples[idx])
		} else {
			test.Samples = append(test.Samples, s.Samples[idx])
		}
	}
	return train, test
}

// ClassCounts returns per-class sample counts.
func (s *Set) ClassCounts() []int {
	counts := make([]int, len(s.Classes))
	for _, smp := range s.Samples {
		if smp.Label >= 0 && smp.Label < len(counts) {
			counts[smp.Label]++
		}
	}
	return counts
}

// Config controls a generator run.
type Config struct {
	N     int     // number of samples
	Seed  uint64  // generation seed
	Noise float64 // additive Gaussian pixel-noise sigma (typical: 0.05)
}

func (c Config) validate() Config {
	if c.N <= 0 {
		c.N = 100
	}
	if c.Noise < 0 {
		c.Noise = 0
	}
	return c
}

// canvas is a Side×Side grayscale drawing surface.
type canvas struct {
	px [Side * Side]float32
}

func (c *canvas) set(x, y int, v float32) {
	if x < 0 || x >= Side || y < 0 || y >= Side {
		return
	}
	i := y*Side + x
	if v > c.px[i] {
		c.px[i] = v
	}
}

// rect fills [x0,x1]×[y0,y1] (inclusive) with intensity v.
func (c *canvas) rect(x0, y0, x1, y1 int, v float32) {
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			c.set(x, y, v)
		}
	}
}

// disc fills a filled circle of radius r at (cx, cy).
func (c *canvas) disc(cx, cy, r int, v float32) {
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				c.set(x, y, v)
			}
		}
	}
}

// line draws a straight segment with simple DDA stepping.
func (c *canvas) line(x0, y0, x1, y1 int, v float32) {
	steps := abs(x1-x0) + abs(y1-y0)
	if steps == 0 {
		c.set(x0, y0, v)
		return
	}
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		x := int(math.Round(float64(x0) + t*float64(x1-x0)))
		y := int(math.Round(float64(y0) + t*float64(y1-y0)))
		c.set(x, y, v)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// finish adds Gaussian noise, clamps to [0,1], and wraps the canvas in a
// tensor.
func (c *canvas) finish(noise float64, r *prng.Source) *tensor.Tensor {
	t := tensor.New(1, Side, Side)
	for i, v := range c.px {
		f := float64(v)
		if noise > 0 {
			f += r.NormFloat64() * noise
		}
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		t.Data()[i] = float32(f)
	}
	return t
}

// Merge concatenates sets with identical class lists into one named set.
func Merge(name string, sets ...*Set) (*Set, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("data: Merge of no sets")
	}
	out := &Set{Name: name, Classes: sets[0].Classes}
	for _, s := range sets {
		if len(s.Classes) != len(out.Classes) {
			return nil, fmt.Errorf("data: Merge class mismatch between %q and %q", sets[0].Name, s.Name)
		}
		out.Samples = append(out.Samples, s.Samples...)
	}
	return out, nil
}
