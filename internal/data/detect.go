package data

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"safexplain/internal/prng"
	"safexplain/internal/tensor"
)

// Detection variant of the case studies: besides the class, each sample
// carries the object's centroid, so models must *localize* — the actual
// shape of perception functions in the CAIS domains (where is the
// pedestrian, not just whether there is one). Coordinates are normalized
// to [0, 1] over the image.

// DetSample is one labelled, localized image.
type DetSample struct {
	X     *tensor.Tensor // [1, Side, Side]
	Class int
	// CX, CY is the object centroid in normalized [0,1] image coordinates.
	CX, CY float32
}

// DetSet is a detection dataset.
type DetSet struct {
	Name    string
	Classes []string
	Samples []DetSample
}

// Len returns the sample count.
func (s *DetSet) Len() int { return len(s.Samples) }

// Sample implements the classification view (nn.Dataset): the class label
// without the location, so classification-only tooling keeps working.
func (s *DetSet) Sample(i int) (*tensor.Tensor, int) {
	return s.Samples[i].X, s.Samples[i].Class
}

// Det returns the full detection sample.
func (s *DetSet) Det(i int) DetSample { return s.Samples[i] }

// DetAt implements nn.DetDataset.
func (s *DetSet) DetAt(i int) (x *tensor.Tensor, class int, cx, cy float32) {
	d := s.Samples[i]
	return d.X, d.Class, d.CX, d.CY
}

// Hash returns the dataset identity hash over pixels, classes, and
// locations.
func (s *DetSet) Hash() string {
	h := sha256.New()
	h.Write([]byte(s.Name))
	var b [4]byte
	for _, smp := range s.Samples {
		binary.LittleEndian.PutUint32(b[:], uint32(smp.Class))
		h.Write(b[:])
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(smp.CX))
		h.Write(b[:])
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(smp.CY))
		h.Write(b[:])
		for _, v := range smp.X.Data() {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			h.Write(b[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Split partitions deterministically like Set.Split.
func (s *DetSet) Split(trainFrac float64, seed uint64) (train, test *DetSet) {
	r := prng.New(seed)
	perm := r.Perm(len(s.Samples))
	nTrain := int(trainFrac * float64(len(s.Samples)))
	train = &DetSet{Name: s.Name + "/train", Classes: s.Classes}
	test = &DetSet{Name: s.Name + "/test", Classes: s.Classes}
	for i, idx := range perm {
		if i < nTrain {
			train.Samples = append(train.Samples, s.Samples[idx])
		} else {
			test.Samples = append(test.Samples, s.Samples[idx])
		}
	}
	return train, test
}

// AutomotiveDetect generates the localization case study: one object
// (vehicle, pedestrian, or cyclist) per frame at a random position; the
// label is (class, centroid). There is no background class — detection
// frames always contain the object, and the scene keeps the road band as
// context.
func AutomotiveDetect(cfg Config) *DetSet {
	cfg = cfg.validate()
	r := prng.New(cfg.Seed)
	s := &DetSet{
		Name:    "automotive-detect",
		Classes: []string{"vehicle", "pedestrian", "cyclist"},
	}
	for i := 0; i < cfg.N; i++ {
		class := i % 3
		var c canvas
		c.rect(0, 11, Side-1, Side-1, 0.15)
		var cx, cy float32
		switch class {
		case 0: // vehicle
			x := 2 + r.Intn(6)
			y := 3 + r.Intn(5)
			w := 6 + r.Intn(3)
			c.rect(x, y+2, x+w, y+5, 0.9)
			c.rect(x+1, y, x+w-1, y+2, 0.6)
			cx = (float32(x) + float32(w)/2) / Side
			cy = (float32(y) + 2.5) / Side
		case 1: // pedestrian
			x := 3 + r.Intn(10)
			y := 3 + r.Intn(3)
			c.disc(x, y, 1, 0.9)
			c.rect(x-1, y+2, x+1, y+8, 0.8)
			cx = float32(x) / Side
			cy = (float32(y) + 4) / Side
		default: // cyclist
			x := 3 + r.Intn(7)
			y := 8 + r.Intn(3)
			c.disc(x, y, 2, 0.7)
			c.disc(x+5, y, 2, 0.7)
			c.line(x, y, x+5, y, 0.9)
			c.disc(x+2, y-4, 1, 0.9)
			cx = (float32(x) + 2.5) / Side
			cy = (float32(y) - 1) / Side
		}
		s.Samples = append(s.Samples, DetSample{
			X: c.finish(cfg.Noise, r), Class: class, CX: cx, CY: cy,
		})
	}
	return s
}
