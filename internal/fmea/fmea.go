// Package fmea implements Failure Modes and Effects Analysis, the FUSA
// analysis technique (IEC 60812 / ISO 26262-9 style) that systematically
// walks every component's failure modes and checks that each one is
// mitigated and detectable. For a CAIS, the interesting part is that DL
// components have *novel* failure modes (distributional shift, adversarial
// inputs, silent accuracy drift) that classical FMEA templates miss; the
// standard worksheet in this package enumerates them next to the classical
// hardware/software modes.
//
// The worksheet is machine-checkable in two directions: completeness
// (every declared component has at least one analyzed failure mode; no
// mode above the RPN threshold lacks a mitigation) and groundedness
// (every claimed detection/mitigation cites an artefact that exists in the
// evidence log).
package fmea

import (
	"fmt"
	"sort"
	"strings"

	"safexplain/internal/trace"
)

// Mode is one analyzed failure mode.
type Mode struct {
	Component string
	Failure   string // what goes wrong
	Effect    string // system-level consequence

	// Classical 1–10 scales: Severity of the effect, Occurrence
	// likelihood, Detection difficulty (10 = undetectable).
	Severity, Occurrence, Detection int

	// Mitigation names the design measure; DetectedBy/MitigatedBy cite
	// evidence-log artefact IDs that substantiate the claims.
	Mitigation  string
	DetectedBy  []string
	MitigatedBy []string
}

// RPN is the risk priority number, Severity × Occurrence × Detection.
func (m Mode) RPN() int { return m.Severity * m.Occurrence * m.Detection }

// validate reports scale violations.
func (m Mode) validate() error {
	for _, v := range []int{m.Severity, m.Occurrence, m.Detection} {
		if v < 1 || v > 10 {
			return fmt.Errorf("fmea: %s/%s: scales must be in 1..10", m.Component, m.Failure)
		}
	}
	return nil
}

// Worksheet is an FMEA over a declared component list.
type Worksheet struct {
	System     string
	Components []string
	Modes      []Mode
}

// Add appends a mode after validating its scales and component.
func (w *Worksheet) Add(m Mode) error {
	if err := m.validate(); err != nil {
		return err
	}
	for _, c := range w.Components {
		if c == m.Component {
			w.Modes = append(w.Modes, m)
			return nil
		}
	}
	return fmt.Errorf("fmea: unknown component %q", m.Component)
}

// UncoveredComponents returns declared components with no analyzed mode —
// the completeness gap.
func (w *Worksheet) UncoveredComponents() []string {
	seen := map[string]bool{}
	for _, m := range w.Modes {
		seen[m.Component] = true
	}
	var out []string
	for _, c := range w.Components {
		if !seen[c] {
			out = append(out, c)
		}
	}
	return out
}

// Critical returns the modes with RPN >= threshold, highest first.
func (w *Worksheet) Critical(threshold int) []Mode {
	var out []Mode
	for _, m := range w.Modes {
		if m.RPN() >= threshold {
			out = append(out, m)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].RPN() > out[j].RPN() })
	return out
}

// UnmitigatedCritical returns critical modes lacking a mitigation — the
// list that must be empty before release.
func (w *Worksheet) UnmitigatedCritical(threshold int) []Mode {
	var out []Mode
	for _, m := range w.Critical(threshold) {
		if m.Mitigation == "" {
			out = append(out, m)
		}
	}
	return out
}

// Ungrounded returns, per mode, the cited artefact IDs that do NOT exist
// in the evidence log — claims without evidence. The map is empty when the
// worksheet is fully grounded.
func (w *Worksheet) Ungrounded(log *trace.Log) map[string][]string {
	missing := map[string][]string{}
	for _, m := range w.Modes {
		key := m.Component + "/" + m.Failure
		for _, id := range append(append([]string{}, m.DetectedBy...), m.MitigatedBy...) {
			if !log.HasArtifact(id) {
				missing[key] = append(missing[key], id)
			}
		}
	}
	return missing
}

// Check runs the release gate: complete, critical modes mitigated, claims
// grounded. The returned error describes the first gap.
func (w *Worksheet) Check(log *trace.Log, rpnThreshold int) error {
	if gaps := w.UncoveredComponents(); len(gaps) > 0 {
		return fmt.Errorf("fmea: components without analyzed failure modes: %v", gaps)
	}
	if um := w.UnmitigatedCritical(rpnThreshold); len(um) > 0 {
		return fmt.Errorf("fmea: %d critical modes (RPN >= %d) without mitigation, first: %s/%s",
			len(um), rpnThreshold, um[0].Component, um[0].Failure)
	}
	if ung := w.Ungrounded(log); len(ung) > 0 {
		for k, ids := range ung {
			return fmt.Errorf("fmea: %s cites missing evidence %v", k, ids)
		}
	}
	return nil
}

// Render prints the worksheet ordered by RPN, highest first.
func (w *Worksheet) Render() string {
	modes := make([]Mode, len(w.Modes))
	copy(modes, w.Modes)
	sort.SliceStable(modes, func(i, j int) bool { return modes[i].RPN() > modes[j].RPN() })
	var b strings.Builder
	fmt.Fprintf(&b, "FMEA: %s (%d components, %d modes)\n", w.System, len(w.Components), len(w.Modes))
	fmt.Fprintf(&b, "%-12s %-34s %3s %3s %3s %4s  %s\n", "component", "failure", "S", "O", "D", "RPN", "mitigation")
	for _, m := range modes {
		fmt.Fprintf(&b, "%-12s %-34s %3d %3d %3d %4d  %s\n",
			m.Component, m.Failure, m.Severity, m.Occurrence, m.Detection, m.RPN(), m.Mitigation)
	}
	return b.String()
}

// StandardWorksheet returns the SAFEXPLAIN CAIS analysis: the classical
// components plus the DL-specific failure modes, with detection and
// mitigation claims citing the lifecycle's standard evidence artefacts.
func StandardWorksheet(system string) *Worksheet {
	w := &Worksheet{
		System: system,
		Components: []string{
			"sensor", "dl-model", "supervisor", "pattern", "platform", "executive",
		},
	}
	modes := []Mode{
		{Component: "sensor", Failure: "pixel corruption / partial occlusion",
			Effect: "model input outside training distribution", Severity: 8, Occurrence: 5, Detection: 3,
			Mitigation: "input-space supervisor rejects to safe state",
			DetectedBy: []string{"test:trust"}, MitigatedBy: []string{"test:pattern"}},
		{Component: "sensor", Failure: "gross failure (inversion/exposure)",
			Effect: "confidently wrong predictions", Severity: 9, Occurrence: 2, Detection: 3,
			Mitigation: "feature-space supervisor + fallback channel",
			DetectedBy: []string{"test:trust"}, MitigatedBy: []string{"test:pattern"}},
		{Component: "dl-model", Failure: "distributional shift (unseen class)",
			Effect: "hazardous misclassification without warning", Severity: 9, Occurrence: 4, Detection: 5,
			Mitigation: "Mahalanobis monitor calibrated on frozen data",
			DetectedBy: []string{"test:trust"}, MitigatedBy: []string{"test:pattern"}},
		{Component: "dl-model", Failure: "adversarial perturbation",
			Effect: "targeted misclassification", Severity: 9, Occurrence: 2, Detection: 6,
			Mitigation: "certified robustness radius + confidence monitor",
			DetectedBy: []string{"test:trust"}, MitigatedBy: []string{"test:accuracy"}},
		{Component: "dl-model", Failure: "SEU bit flip in weight memory",
			Effect: "silent model corruption", Severity: 8, Occurrence: 3, Detection: 7,
			Mitigation: "model content hash + redundant channels",
			DetectedBy: []string{"test:determinism"}, MitigatedBy: []string{"test:pattern"}},
		{Component: "supervisor", Failure: "miscalibrated threshold",
			Effect: "excess rejections or missed hazards", Severity: 6, Occurrence: 4, Detection: 4,
			Mitigation: "quantile calibration on frozen in-distribution data",
			DetectedBy: []string{"test:trust"}},
		{Component: "pattern", Failure: "common-mode failure of redundant channels",
			Effect: "agreement on a wrong answer", Severity: 9, Occurrence: 3, Detection: 6,
			Mitigation:  "architectural + seed diversity between channels",
			MitigatedBy: []string{"test:pattern"}},
		{Component: "platform", Failure: "co-runner interference (cache/bus)",
			Effect: "execution-time overrun", Severity: 7, Occurrence: 6, Detection: 4,
			Mitigation: "partitioned/locked cache, TDMA bus, pWCET budget",
			DetectedBy: []string{"test:pwcet"}, MitigatedBy: []string{"test:pwcet"}},
		{Component: "executive", Failure: "task overrun cascade",
			Effect: "frame deadline miss", Severity: 8, Occurrence: 3, Detection: 2,
			Mitigation: "watchdog + mixed-criticality shedding + degraded mode",
			DetectedBy: []string{"test:pwcet"}},
	}
	for _, m := range modes {
		if err := w.Add(m); err != nil {
			panic(err) // the standard worksheet is internally consistent
		}
	}
	return w
}
