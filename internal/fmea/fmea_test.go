package fmea

import (
	"strings"
	"testing"

	"safexplain/internal/trace"
)

func sampleSheet() *Worksheet {
	return &Worksheet{
		System:     "test",
		Components: []string{"a", "b"},
	}
}

func TestModeRPN(t *testing.T) {
	m := Mode{Severity: 9, Occurrence: 4, Detection: 5}
	if m.RPN() != 180 {
		t.Fatalf("RPN = %d", m.RPN())
	}
}

func TestAddValidates(t *testing.T) {
	w := sampleSheet()
	if err := w.Add(Mode{Component: "a", Failure: "f", Severity: 1, Occurrence: 1, Detection: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Mode{Component: "a", Failure: "f", Severity: 0, Occurrence: 1, Detection: 1}); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if err := w.Add(Mode{Component: "a", Failure: "f", Severity: 11, Occurrence: 1, Detection: 1}); err == nil {
		t.Fatal("scale 11 accepted")
	}
	if err := w.Add(Mode{Component: "zz", Failure: "f", Severity: 1, Occurrence: 1, Detection: 1}); err == nil {
		t.Fatal("unknown component accepted")
	}
}

func TestUncoveredComponents(t *testing.T) {
	w := sampleSheet()
	if got := w.UncoveredComponents(); len(got) != 2 {
		t.Fatalf("uncovered = %v", got)
	}
	mustAdd(t, w, Mode{Component: "a", Failure: "f", Severity: 5, Occurrence: 5, Detection: 5})
	got := w.UncoveredComponents()
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("uncovered = %v", got)
	}
}

func mustAdd(t *testing.T, w *Worksheet, m Mode) {
	t.Helper()
	if err := w.Add(m); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalSortedByRPN(t *testing.T) {
	w := sampleSheet()
	mustAdd(t, w, Mode{Component: "a", Failure: "low", Severity: 2, Occurrence: 2, Detection: 2})
	mustAdd(t, w, Mode{Component: "a", Failure: "high", Severity: 9, Occurrence: 9, Detection: 9})
	mustAdd(t, w, Mode{Component: "b", Failure: "mid", Severity: 5, Occurrence: 5, Detection: 5, Mitigation: "m"})
	crit := w.Critical(100)
	if len(crit) != 2 || crit[0].Failure != "high" || crit[1].Failure != "mid" {
		t.Fatalf("critical = %+v", crit)
	}
	um := w.UnmitigatedCritical(100)
	if len(um) != 1 || um[0].Failure != "high" {
		t.Fatalf("unmitigated = %+v", um)
	}
}

func TestUngrounded(t *testing.T) {
	w := sampleSheet()
	mustAdd(t, w, Mode{Component: "a", Failure: "f", Severity: 5, Occurrence: 5, Detection: 5,
		DetectedBy: []string{"test:exists"}, MitigatedBy: []string{"test:missing"}})
	var l trace.Log
	l.Append(trace.KindVerification, "test:exists", "ok")
	ung := w.Ungrounded(&l)
	if len(ung) != 1 {
		t.Fatalf("ungrounded = %v", ung)
	}
	if ids := ung["a/f"]; len(ids) != 1 || ids[0] != "test:missing" {
		t.Fatalf("ungrounded[a/f] = %v", ids)
	}
}

func TestCheckGates(t *testing.T) {
	var l trace.Log
	l.Append(trace.KindVerification, "ev", "ok")

	// Gap 1: uncovered component.
	w := sampleSheet()
	mustAdd(t, w, Mode{Component: "a", Failure: "f", Severity: 2, Occurrence: 2, Detection: 2})
	if err := w.Check(&l, 100); err == nil || !strings.Contains(err.Error(), "without analyzed") {
		t.Fatalf("completeness gap not caught: %v", err)
	}
	// Gap 2: unmitigated critical.
	mustAdd(t, w, Mode{Component: "b", Failure: "boom", Severity: 9, Occurrence: 9, Detection: 9})
	if err := w.Check(&l, 100); err == nil || !strings.Contains(err.Error(), "without mitigation") {
		t.Fatalf("mitigation gap not caught: %v", err)
	}
	// Gap 3: ungrounded claim.
	w.Modes[1].Mitigation = "fixed"
	w.Modes[1].MitigatedBy = []string{"ghost"}
	if err := w.Check(&l, 100); err == nil || !strings.Contains(err.Error(), "missing evidence") {
		t.Fatalf("grounding gap not caught: %v", err)
	}
	// All green.
	w.Modes[1].MitigatedBy = []string{"ev"}
	if err := w.Check(&l, 100); err != nil {
		t.Fatalf("clean worksheet rejected: %v", err)
	}
}

func TestRenderOrdering(t *testing.T) {
	w := sampleSheet()
	mustAdd(t, w, Mode{Component: "a", Failure: "small", Severity: 1, Occurrence: 1, Detection: 1})
	mustAdd(t, w, Mode{Component: "b", Failure: "big", Severity: 9, Occurrence: 9, Detection: 9, Mitigation: "x"})
	out := w.Render()
	if !strings.Contains(out, "729") {
		t.Fatalf("render missing RPN:\n%s", out)
	}
	if strings.Index(out, "big") > strings.Index(out, "small") {
		t.Fatal("render not ordered by RPN")
	}
}

func TestStandardWorksheetInternallyConsistent(t *testing.T) {
	w := StandardWorksheet("cais")
	if gaps := w.UncoveredComponents(); len(gaps) != 0 {
		t.Fatalf("standard worksheet has uncovered components: %v", gaps)
	}
	if um := w.UnmitigatedCritical(150); len(um) != 0 {
		t.Fatalf("standard worksheet has unmitigated critical modes: %+v", um)
	}
	// Every DL-specific mode family appears.
	text := w.Render()
	for _, want := range []string{"distributional shift", "adversarial", "SEU", "co-runner"} {
		if !strings.Contains(text, want) {
			t.Fatalf("standard worksheet missing %q", want)
		}
	}
}

func TestStandardWorksheetGroundsAgainstLifecycleArtifacts(t *testing.T) {
	// With the lifecycle's standard verification artefacts present, the
	// worksheet must be fully grounded.
	var l trace.Log
	for _, id := range []string{
		"test:accuracy", "test:determinism", "test:trust", "test:explain",
		"test:pwcet", "test:pattern",
	} {
		l.Append(trace.KindVerification, id, "ok")
	}
	w := StandardWorksheet("cais")
	if err := w.Check(&l, 150); err != nil {
		t.Fatalf("standard worksheet fails against lifecycle evidence: %v", err)
	}
	// Without the evidence it must NOT pass.
	if err := w.Check(&trace.Log{}, 150); err == nil {
		t.Fatal("worksheet grounded against an empty log")
	}
}
