package supervisor

import (
	"sort"

	"safexplain/internal/nn"
	"safexplain/internal/stats"
)

// Offline evaluation of supervisors: detection metrics against an OOD set
// (experiment T1) and the risk–coverage trade-off of selective prediction
// (figure F3).

// OODReport summarizes a supervisor's detection performance.
type OODReport struct {
	Supervisor string
	AUROC      float64 // area under ROC, OOD as the positive class
	FPR95      float64 // false-positive rate at 95% OOD detection
}

// EvaluateOOD scores every sample of the in-distribution and OOD sets and
// returns detection metrics. The supervisor must already be fitted.
func EvaluateOOD(sup Supervisor, net *nn.Network, id, ood Dataset) (OODReport, error) {
	idScores := make([]float64, id.Len())
	for i := 0; i < id.Len(); i++ {
		x, _ := id.Sample(i)
		idScores[i] = sup.Score(net, x)
	}
	oodScores := make([]float64, ood.Len())
	for i := 0; i < ood.Len(); i++ {
		x, _ := ood.Sample(i)
		oodScores[i] = sup.Score(net, x)
	}
	auroc, err := stats.AUROC(idScores, oodScores)
	if err != nil {
		return OODReport{}, err
	}
	fpr95, err := stats.FPRAtTPR(idScores, oodScores, 0.95)
	if err != nil {
		return OODReport{}, err
	}
	return OODReport{Supervisor: sup.Name(), AUROC: auroc, FPR95: fpr95}, nil
}

// RiskCoveragePoint is one operating point of selective prediction.
type RiskCoveragePoint struct {
	Coverage          float64 // fraction of inputs the system answers
	SelectiveAccuracy float64 // accuracy on the answered fraction
}

// RiskCoverage sweeps the rejection threshold over the test set: at each
// coverage level c the system answers only the c least-anomalous inputs.
// A good supervisor makes selective accuracy rise as coverage falls —
// figure F3. Points are returned at the given coverage grid.
func RiskCoverage(sup Supervisor, net *nn.Network, test Dataset, coverages []float64) []RiskCoveragePoint {
	type scored struct {
		score   float64
		correct bool
	}
	items := make([]scored, test.Len())
	for i := 0; i < test.Len(); i++ {
		x, label := test.Sample(i)
		class, _ := net.Predict(x)
		items[i] = scored{score: sup.Score(net, x), correct: class == label}
	}
	// Sort ascending by anomaly score (stable: ties keep sample order), so
	// the most-trusted inputs come first.
	sort.SliceStable(items, func(a, b int) bool { return items[a].score < items[b].score })
	var out []RiskCoveragePoint
	for _, c := range coverages {
		k := int(c * float64(len(items)))
		if k <= 0 {
			out = append(out, RiskCoveragePoint{Coverage: c, SelectiveAccuracy: 1})
			continue
		}
		correct := 0
		for i := 0; i < k; i++ {
			if items[i].correct {
				correct++
			}
		}
		out = append(out, RiskCoveragePoint{
			Coverage:          c,
			SelectiveAccuracy: float64(correct) / float64(k),
		})
	}
	return out
}
