package supervisor

import (
	"math"
	"sync"
	"testing"

	"safexplain/internal/data"
	"safexplain/internal/nn"
	"safexplain/internal/prng"
	"safexplain/internal/stats"
	"safexplain/internal/tensor"
)

// statsAUROC is a thin alias keeping the test body readable.
func statsAUROC(neg, pos []float64) (float64, error) { return stats.AUROC(neg, pos) }

// Shared trained model for the package's tests: training once keeps the
// suite fast while every test still exercises a realistic classifier.
var (
	fixtureOnce sync.Once
	fixNet      *nn.Network
	fixTrain    *data.Set
	fixTest     *data.Set
)

func fixture(t testing.TB) (*nn.Network, *data.Set, *data.Set) {
	t.Helper()
	fixtureOnce.Do(func() {
		set := data.Automotive(data.Config{N: 280, Seed: 100, Noise: 0.05})
		fixTrain, fixTest = set.Split(0.75, 101)
		src := prng.New(102)
		fixNet = nn.NewNetwork("sup-cnn",
			nn.NewConv2D(1, 6, 3, 1, 1, src), nn.NewReLU(), nn.NewMaxPool2D(2, 2),
			nn.NewFlatten(), nn.NewDense(6*8*8, 24, src), nn.NewReLU(),
			nn.NewDense(24, set.NumClasses(), src))
		if _, _, err := nn.TrainClassifier(fixNet, fixTrain, nn.TrainConfig{
			Epochs: 10, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 103,
		}); err != nil {
			panic(err)
		}
	})
	return fixNet, fixTrain, fixTest
}

func TestMaxSoftmaxRange(t *testing.T) {
	net, train, test := fixture(t)
	sup := &MaxSoftmax{}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x, _ := test.Sample(i)
		s := sup.Score(net, x)
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestEntropyExtremes(t *testing.T) {
	// A handcrafted model with huge logit gap: entropy ~0. Uniform logits:
	// entropy 1.
	d := nn.NewDense(2, 3, nil)
	net := nn.NewNetwork("ent", d)
	x := tensor.FromSlice([]float32{1, 1}, 2)

	// Uniform: zero weights.
	if s := (Entropy{}).Score(net, x); math.Abs(s-1) > 1e-9 {
		t.Fatalf("uniform entropy = %v, want 1", s)
	}
	// Confident: one big logit.
	d.B.Value.Data()[0] = 50
	if s := (Entropy{}).Score(net, x); s > 1e-6 {
		t.Fatalf("confident entropy = %v, want ~0", s)
	}
}

func TestMarginExtremes(t *testing.T) {
	d := nn.NewDense(2, 3, nil)
	net := nn.NewNetwork("mar", d)
	x := tensor.FromSlice([]float32{1, 1}, 2)
	// Uniform probabilities: margin score 1.
	if s := (Margin{}).Score(net, x); math.Abs(s-1) > 1e-9 {
		t.Fatalf("uniform margin score = %v, want 1", s)
	}
	d.B.Value.Data()[0] = 50
	if s := (Margin{}).Score(net, x); s > 1e-6 {
		t.Fatalf("confident margin score = %v, want ~0", s)
	}
}

func TestMahalanobisFitAndScore(t *testing.T) {
	net, train, test := fixture(t)
	sup := &Mahalanobis{}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	// ID scores must be finite and non-negative.
	x, _ := test.Sample(0)
	s := sup.Score(net, x)
	if s < 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("score = %v", s)
	}
	// Unfitted supervisor returns +Inf (fail-safe: nothing is trusted).
	if got := (&Mahalanobis{}).Score(net, x); !math.IsInf(got, 1) {
		t.Fatalf("unfitted score = %v, want +Inf", got)
	}
	// Fit without data errors.
	if err := (&Mahalanobis{}).Fit(net, &data.Set{}); err == nil {
		t.Fatal("expected error fitting on empty set")
	}
}

func TestAutoencoderFitAndScore(t *testing.T) {
	net, train, test := fixture(t)
	sup := &Autoencoder{Seed: 5, Epochs: 15}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	x, _ := test.Sample(0)
	idScore := sup.Score(net, x)
	if idScore < 0 || math.IsNaN(idScore) {
		t.Fatalf("score = %v", idScore)
	}
	// Inverted image must reconstruct worse than an ID image.
	inv := x.Clone()
	for i, v := range inv.Data() {
		inv.Data()[i] = 1 - v
	}
	if oodScore := sup.Score(net, inv); oodScore <= idScore {
		t.Fatalf("inverted score %v <= ID score %v", oodScore, idScore)
	}
	if got := (&Autoencoder{}).Score(net, x); !math.IsInf(got, 1) {
		t.Fatalf("unfitted AE score = %v, want +Inf", got)
	}
}

func TestSoftmaxSupervisorsDetectMisclassification(t *testing.T) {
	// Softmax-derived scores are error detectors, not far-OOD detectors
	// (a classifier can be *more* confident on gross OOD — the known
	// weakness motivating feature-space supervisors). The property they
	// must satisfy: scores separate correct from incorrect predictions.
	net, train, test := fixture(t)
	for _, sup := range []Supervisor{&MaxSoftmax{}, Entropy{}, Margin{}} {
		if err := sup.Fit(net, train); err != nil {
			t.Fatalf("%s: %v", sup.Name(), err)
		}
		var correctScores, wrongScores []float64
		for i := 0; i < test.Len(); i++ {
			x, label := test.Sample(i)
			class, _ := net.Predict(x)
			s := sup.Score(net, x)
			if class == label {
				correctScores = append(correctScores, s)
			} else {
				wrongScores = append(wrongScores, s)
			}
		}
		if len(wrongScores) == 0 {
			t.Skip("no misclassifications in fixture")
		}
		auroc, err := statsAUROC(correctScores, wrongScores)
		if err != nil {
			t.Fatalf("%s: %v", sup.Name(), err)
		}
		if auroc <= 0.6 {
			t.Errorf("%s: error-detection AUROC %v, want > 0.6", sup.Name(), auroc)
		}
	}
}

func TestFeatureSupervisorsDetectGrossOOD(t *testing.T) {
	// Feature- and input-space supervisors must beat chance on far OOD
	// (inversion) where softmax confidence is known to fail.
	net, train, test := fixture(t)
	ood := data.WithInversion(test)
	for _, sup := range []Supervisor{&Mahalanobis{}, &Autoencoder{Seed: 7, Epochs: 15}} {
		if err := sup.Fit(net, train); err != nil {
			t.Fatalf("%s: %v", sup.Name(), err)
		}
		rep, err := EvaluateOOD(sup, net, test, ood)
		if err != nil {
			t.Fatalf("%s: %v", sup.Name(), err)
		}
		if rep.AUROC <= 0.7 {
			t.Errorf("%s: AUROC %v on gross OOD, want > 0.7", sup.Name(), rep.AUROC)
		}
	}
}

func TestMahalanobisBeatsChanceOnUnseen(t *testing.T) {
	net, train, test := fixture(t)
	sup := &Mahalanobis{}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	ood := data.UnseenClass(test.Len(), 0.05, 200)
	rep, err := EvaluateOOD(sup, net, test, ood)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AUROC < 0.6 {
		t.Fatalf("mahalanobis AUROC %v on unseen class", rep.AUROC)
	}
}

func TestFitTemperaturePositive(t *testing.T) {
	net, _, test := fixture(t)
	temp := FitTemperature(net, test)
	if temp <= 0 {
		t.Fatalf("temperature %v", temp)
	}
	sup := &MaxSoftmax{Temperature: temp}
	if err := sup.Fit(net, nil); err != nil {
		t.Fatal(err)
	}
	x, _ := test.Sample(0)
	if s := sup.Score(net, x); s < 0 || s > 1 {
		t.Fatalf("temperature-scaled score %v", s)
	}
}

func TestMonitorCalibratedRejectionRate(t *testing.T) {
	net, train, test := fixture(t)
	m, err := NewMonitor(&Mahalanobis{}, net, train, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for i := 0; i < test.Len(); i++ {
		x, _ := test.Sample(i)
		if !m.Trusted(net, x) {
			rejected++
		}
	}
	rate := float64(rejected) / float64(test.Len())
	// Calibrated at 10% on train; allow slack for train/test gap.
	if rate > 0.3 {
		t.Fatalf("ID rejection rate %v far above calibrated 0.1", rate)
	}
	// The monitor must reject gross OOD far more often.
	oodSet := data.WithInversion(test)
	oodRejected := 0
	for i := 0; i < oodSet.Len(); i++ {
		x, _ := oodSet.Sample(i)
		if !m.Trusted(net, x) {
			oodRejected++
		}
	}
	if oodRejected <= rejected {
		t.Fatalf("monitor rejects OOD (%d) no more than ID (%d)", oodRejected, rejected)
	}
}

func TestRiskCoverageMonotoneEndpoints(t *testing.T) {
	net, train, test := fixture(t)
	sup := &MaxSoftmax{}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	pts := RiskCoverage(sup, net, test, []float64{0.2, 0.5, 1.0})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	full := pts[2].SelectiveAccuracy
	low := pts[0].SelectiveAccuracy
	if low < full-0.02 {
		t.Fatalf("selective accuracy at 20%% coverage (%v) below full coverage (%v)", low, full)
	}
	for _, p := range pts {
		if p.SelectiveAccuracy < 0 || p.SelectiveAccuracy > 1 {
			t.Fatalf("accuracy %v out of range", p.SelectiveAccuracy)
		}
	}
}

func TestRiskCoverageZeroCoverage(t *testing.T) {
	net, train, test := fixture(t)
	sup := &MaxSoftmax{}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	pts := RiskCoverage(sup, net, test, []float64{0})
	if pts[0].SelectiveAccuracy != 1 {
		t.Fatalf("zero coverage accuracy = %v, want 1 by convention", pts[0].SelectiveAccuracy)
	}
}

func TestStandardNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Standard() {
		if seen[s.Name()] {
			t.Fatalf("duplicate supervisor %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestODINDetectsMisclassification(t *testing.T) {
	net, train, test := fixture(t)
	sup := &ODIN{}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	var correctScores, wrongScores []float64
	for i := 0; i < test.Len(); i++ {
		x, label := test.Sample(i)
		class, _ := net.Predict(x)
		s := sup.Score(net, x)
		if s < 0 || s > 1 {
			t.Fatalf("ODIN score %v outside [0,1]", s)
		}
		if class == label {
			correctScores = append(correctScores, s)
		} else {
			wrongScores = append(wrongScores, s)
		}
	}
	if len(wrongScores) == 0 {
		t.Skip("no misclassifications in fixture")
	}
	auroc, err := statsAUROC(correctScores, wrongScores)
	if err != nil {
		t.Fatal(err)
	}
	if auroc <= 0.6 {
		t.Fatalf("ODIN error-detection AUROC %v", auroc)
	}
}

func TestODINLeavesGradientsClean(t *testing.T) {
	net, train, test := fixture(t)
	sup := &ODIN{}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	x, _ := test.Sample(0)
	sup.Score(net, x)
	for _, p := range net.Params() {
		for _, g := range p.Grad.Data() {
			if g != 0 {
				t.Fatal("ODIN left parameter gradients behind")
			}
		}
	}
}

func TestODINDefaultsApplied(t *testing.T) {
	sup := &ODIN{}
	if err := sup.Fit(nil, nil); err != nil {
		t.Fatal(err)
	}
	if sup.Temperature != 2 || sup.Epsilon != 0.01 {
		t.Fatalf("defaults not applied: %+v", sup)
	}
}

func TestECEBounds(t *testing.T) {
	net, _, test := fixture(t)
	ece, err := ECE(net, test, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece < 0 || ece > 1 {
		t.Fatalf("ECE = %v", ece)
	}
	if _, err := ECE(net, &data.Set{}, 1, 10); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestECEDetectsOverconfidence(t *testing.T) {
	// A model with huge logits on coin-flip data is maximally
	// overconfident: confidence ~1, accuracy ~0.5 -> ECE ~0.5.
	d := nn.NewDense(1, 2, nil)
	d.W.Value.Set2(0, 0, 100) // logit 0 = 100*x, logit 1 = 0
	net := nn.NewNetwork("over", d)
	ds := &data.Set{Classes: []string{"a", "b"}}
	for i := 0; i < 100; i++ {
		x := tensor.FromSlice([]float32{1}, 1)
		ds.Samples = append(ds.Samples, data.Sample{X: x, Label: i % 2})
	}
	ece, err := ECE(net, ds, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece < 0.4 {
		t.Fatalf("overconfident model has ECE %v, want ~0.5", ece)
	}
	// Aggressive temperature softens the overconfidence and must shrink
	// the ECE.
	eceT, err := ECE(net, ds, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if eceT >= ece {
		t.Fatalf("temperature did not reduce ECE: %v vs %v", eceT, ece)
	}
}

func TestFittedTemperatureDoesNotWorsenECE(t *testing.T) {
	net, _, test := fixture(t)
	temp := FitTemperature(net, test)
	e1, err := ECE(net, test, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	eT, err := ECE(net, test, temp, 10)
	if err != nil {
		t.Fatal(err)
	}
	if eT > e1+0.05 {
		t.Fatalf("fitted temperature %v worsened ECE: %v -> %v", temp, e1, eT)
	}
}

func TestDriftDetectorCalibration(t *testing.T) {
	if _, err := NewDriftDetector([]float64{1}, 0, 0); err == nil {
		t.Fatal("single score accepted")
	}
	d, err := NewDriftDetector([]float64{1, 2, 3, 4}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean != 2.5 || d.K != 0.5 || d.H != 8 {
		t.Fatalf("calibration: %+v", d)
	}
}

func TestDriftDetectorNoFalseAlarmInDistribution(t *testing.T) {
	r := prng.New(50)
	calib := make([]float64, 200)
	for i := range calib {
		calib[i] = 5 + r.NormFloat64()
	}
	d, err := NewDriftDetector(calib, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if d.Observe(5 + r.NormFloat64()) {
			t.Fatalf("false alarm at frame %d (stat %v)", i, d.Statistic())
		}
	}
}

func TestDriftDetectorCatchesShift(t *testing.T) {
	r := prng.New(51)
	calib := make([]float64, 200)
	for i := range calib {
		calib[i] = 5 + r.NormFloat64()
	}
	d, err := NewDriftDetector(calib, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Nominal phase.
	for i := 0; i < 300; i++ {
		d.Observe(5 + r.NormFloat64())
	}
	if d.Alarmed() {
		t.Fatal("alarmed during nominal phase")
	}
	// Drift: scores rise by 1.5 sigma.
	frames := 0
	for ; frames < 500; frames++ {
		if d.Observe(6.5 + r.NormFloat64()) {
			break
		}
	}
	if !d.Alarmed() {
		t.Fatal("drift never detected")
	}
	if frames > 50 {
		t.Fatalf("detection latency %d frames, want prompt", frames)
	}
	// Latched until reset.
	if !d.Observe(5) {
		t.Fatal("alarm must latch")
	}
	d.Reset()
	if d.Alarmed() || d.Statistic() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestDriftDetectorEndToEnd(t *testing.T) {
	// Integration: Mahalanobis scores drift upward as sensor noise grows;
	// the detector must alarm during the degraded phase only.
	net, train, test := fixture(t)
	sup := &Mahalanobis{}
	if err := sup.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	var calib []float64
	for i := 0; i < train.Len(); i++ {
		x, _ := train.Sample(i)
		calib = append(calib, sup.Score(net, x))
	}
	d, err := NewDriftDetector(calib, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < test.Len(); i++ {
		x, _ := test.Sample(i)
		if d.Observe(sup.Score(net, x)) {
			t.Fatalf("alarm on clean test data at %d", i)
		}
	}
	degraded := data.WithGaussianNoise(test, 0.15, 52)
	alarmed := false
	for i := 0; i < degraded.Len(); i++ {
		x, _ := degraded.Sample(i)
		if d.Observe(sup.Score(net, x)) {
			alarmed = true
			break
		}
	}
	if !alarmed {
		t.Fatal("sensor degradation never raised the drift alarm")
	}
}

func TestPortfolioFitErrors(t *testing.T) {
	net, _, _ := fixture(t)
	if err := NewPortfolio().Fit(net, fixTrain); err == nil {
		t.Fatal("empty portfolio accepted")
	}
	if err := StandardPortfolio().Fit(net, &data.Set{}); err == nil {
		t.Fatal("empty calibration accepted")
	}
}

func TestPortfolioUnfittedFailsSafe(t *testing.T) {
	net, _, test := fixture(t)
	x, _ := test.Sample(0)
	if got := StandardPortfolio().Score(net, x); got != 1 {
		t.Fatalf("unfitted portfolio score %v, want 1 (trust nothing)", got)
	}
}

func TestPortfolioScoreRange(t *testing.T) {
	net, train, test := fixture(t)
	p := StandardPortfolio()
	if err := p.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x, _ := test.Sample(i)
		s := p.Score(net, x)
		if s < 0 || s > 1 {
			t.Fatalf("portfolio score %v outside [0,1]", s)
		}
	}
}

func TestRankQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	cases := []struct{ v, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := rank(sorted, c.v); got != c.want {
			t.Fatalf("rank(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestPortfolioCoversBothFailureKinds(t *testing.T) {
	// The reason the portfolio exists: it must be decent on BOTH far OOD
	// (where softmax fails) and misclassification ranking (where
	// Mahalanobis is weak), where each single member fails one of the two.
	net, train, test := fixture(t)
	p := StandardPortfolio()
	if err := p.Fit(net, train); err != nil {
		t.Fatal(err)
	}
	soft := &MaxSoftmax{}
	if err := soft.Fit(net, train); err != nil {
		t.Fatal(err)
	}

	// Far OOD: portfolio must crush the softmax member.
	ood := data.WithInversion(test)
	repP, err := EvaluateOOD(p, net, test, ood)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := EvaluateOOD(soft, net, test, ood)
	if err != nil {
		t.Fatal(err)
	}
	if repP.AUROC < 0.9 {
		t.Fatalf("portfolio far-OOD AUROC %v", repP.AUROC)
	}
	if repP.AUROC <= repS.AUROC {
		t.Fatalf("portfolio %v not above softmax %v on far OOD", repP.AUROC, repS.AUROC)
	}

	// Error ranking on degraded inputs: portfolio selective accuracy at
	// 60% coverage must recover most of the softmax member's advantage.
	degraded := data.WithGaussianNoise(test, 0.35, 900)
	ptsP := RiskCoverage(p, net, degraded, []float64{0.6, 1.0})
	full := ptsP[1].SelectiveAccuracy
	if ptsP[0].SelectiveAccuracy < full {
		t.Fatalf("portfolio selective accuracy %v below full-coverage %v",
			ptsP[0].SelectiveAccuracy, full)
	}
}
