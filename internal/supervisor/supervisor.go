// Package supervisor implements prediction-trust supervisors: runtime
// monitors that score how much a DL prediction should be trusted, the
// concrete mechanism behind the abstract's promise of "specific approaches
// to explain whether predictions can be trusted".
//
// A Supervisor maps (model, input) to an anomaly score — higher means less
// trustworthy. Scores feed two consumers: offline evaluation (AUROC /
// FPR@95TPR against out-of-distribution sets, experiment T1) and the online
// Monitor, which thresholds the score at a rate calibrated on
// in-distribution data and is what the safety patterns (internal/safety)
// embed as their checker channel.
package supervisor

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"safexplain/internal/nn"
	"safexplain/internal/prng"
	"safexplain/internal/stats"
	"safexplain/internal/tensor"
)

// Dataset is the labelled-sample view supervisors calibrate on
// (structurally identical to nn.Dataset).
type Dataset interface {
	Len() int
	Sample(i int) (x *tensor.Tensor, label int)
}

// Supervisor scores the trustworthiness of a model prediction. Fit must be
// called with in-distribution calibration data before Score.
type Supervisor interface {
	Name() string
	Fit(net *nn.Network, calib Dataset) error
	// Score returns the anomaly score for x; higher = less trustworthy.
	Score(net *nn.Network, x *tensor.Tensor) float64
}

// ErrNotFitted is returned when Score-dependent operations run before Fit.
var ErrNotFitted = errors.New("supervisor: not fitted")

// softmaxProbs computes the softmax of net's logits on x, with optional
// temperature scaling (T=1 disables).
func softmaxProbs(net *nn.Network, x *tensor.Tensor, temperature float64) []float64 {
	logits := net.Forward(x)
	n := logits.Len()
	ps := make([]float64, n)
	maxv := math.Inf(-1)
	for i := 0; i < n; i++ {
		v := float64(logits.Data()[i]) / temperature
		ps[i] = v
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i := range ps {
		ps[i] = math.Exp(ps[i] - maxv)
		sum += ps[i]
	}
	for i := range ps {
		ps[i] /= sum
	}
	return ps
}

// MaxSoftmax scores 1 − max softmax probability, the classical baseline
// (Hendrycks & Gimpel). Temperature > 0 applies calibrated scaling;
// FitTemperature can choose it on validation data.
type MaxSoftmax struct {
	Temperature float64
}

// Name implements Supervisor.
func (m *MaxSoftmax) Name() string {
	if m.Temperature > 0 && m.Temperature != 1 {
		return fmt.Sprintf("max-softmax(T=%.2g)", m.Temperature)
	}
	return "max-softmax"
}

// Fit implements Supervisor. MaxSoftmax has no state beyond temperature.
func (m *MaxSoftmax) Fit(net *nn.Network, calib Dataset) error {
	if m.Temperature <= 0 {
		m.Temperature = 1
	}
	return nil
}

// Score implements Supervisor.
func (m *MaxSoftmax) Score(net *nn.Network, x *tensor.Tensor) float64 {
	t := m.Temperature
	if t <= 0 {
		t = 1
	}
	ps := softmaxProbs(net, x, t)
	best := 0.0
	for _, p := range ps {
		if p > best {
			best = p
		}
	}
	return 1 - best
}

// Entropy scores the normalized Shannon entropy of the softmax output:
// 0 for a one-hot prediction, 1 for a uniform one.
type Entropy struct{}

// Name implements Supervisor.
func (Entropy) Name() string { return "entropy" }

// Fit implements Supervisor.
func (Entropy) Fit(net *nn.Network, calib Dataset) error { return nil }

// Score implements Supervisor.
func (Entropy) Score(net *nn.Network, x *tensor.Tensor) float64 {
	ps := softmaxProbs(net, x, 1)
	var h float64
	for _, p := range ps {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(len(ps)))
}

// Margin scores 1 − (p₁ − p₂), the complement of the gap between the top
// two softmax probabilities.
type Margin struct{}

// Name implements Supervisor.
func (Margin) Name() string { return "margin" }

// Fit implements Supervisor.
func (Margin) Fit(net *nn.Network, calib Dataset) error { return nil }

// Score implements Supervisor.
func (Margin) Score(net *nn.Network, x *tensor.Tensor) float64 {
	ps := softmaxProbs(net, x, 1)
	first, second := 0.0, 0.0
	for _, p := range ps {
		if p > first {
			first, second = p, first
		} else if p > second {
			second = p
		}
	}
	return 1 - (first - second)
}

// Mahalanobis models the penultimate-layer features of in-distribution
// data as class-conditional Gaussians with a shared covariance and scores
// the squared distance to the nearest class centroid — a feature-space
// OOD detector that sees shifts softmax confidence misses.
type Mahalanobis struct {
	// Ridge is the covariance regularizer (default 1e-3).
	Ridge float64

	chol  *stats.Matrix
	means [][]float64
}

// Name implements Supervisor.
func (*Mahalanobis) Name() string { return "mahalanobis" }

// Fit implements Supervisor.
func (m *Mahalanobis) Fit(net *nn.Network, calib Dataset) error {
	if calib == nil || calib.Len() < 2 {
		return errors.New("supervisor: mahalanobis needs calibration data")
	}
	ridge := m.Ridge
	if ridge <= 0 {
		ridge = 1e-3
	}
	byClass := map[int][][]float64{}
	var all [][]float64
	for i := 0; i < calib.Len(); i++ {
		x, label := calib.Sample(i)
		f32 := net.Features(x)
		f := make([]float64, len(f32))
		for j, v := range f32 {
			f[j] = float64(v)
		}
		byClass[label] = append(byClass[label], f)
		all = append(all, f)
	}
	// Class means.
	maxLabel := -1
	for l := range byClass {
		if l > maxLabel {
			maxLabel = l
		}
	}
	m.means = make([][]float64, maxLabel+1)
	dim := len(all[0])
	for l, rows := range byClass {
		mean := make([]float64, dim)
		for _, r := range rows {
			for j, v := range r {
				mean[j] += v
			}
		}
		for j := range mean {
			mean[j] /= float64(len(rows))
		}
		m.means[l] = mean
	}
	// Shared covariance of the centred features.
	centred := make([][]float64, 0, len(all))
	for i := 0; i < calib.Len(); i++ {
		_, label := calib.Sample(i)
		row := make([]float64, dim)
		for j := range row {
			row[j] = all[i][j] - m.means[label][j]
		}
		centred = append(centred, row)
	}
	cov, _, err := stats.Covariance(centred, ridge)
	if err != nil {
		return err
	}
	chol, err := stats.Cholesky(cov)
	if err != nil {
		return err
	}
	m.chol = chol
	return nil
}

// Score implements Supervisor.
func (m *Mahalanobis) Score(net *nn.Network, x *tensor.Tensor) float64 {
	if m.chol == nil {
		return math.Inf(1)
	}
	f32 := net.Features(x)
	f := make([]float64, len(f32))
	for j, v := range f32 {
		f[j] = float64(v)
	}
	best := math.Inf(1)
	for _, mean := range m.means {
		if mean == nil {
			continue
		}
		if d := stats.MahalanobisSq(m.chol, mean, f); d < best {
			best = d
		}
	}
	return best
}

// Autoencoder scores the reconstruction error of a small bottleneck
// autoencoder trained on in-distribution inputs: inputs the AE cannot
// reconstruct were not in the training distribution. It watches the input,
// not the classifier, so it composes with any model.
type Autoencoder struct {
	// Hidden is the bottleneck width (default 24).
	Hidden int
	// Epochs, LR, Seed control Fit's training run.
	Epochs int
	LR     float32
	Seed   uint64

	ae    *nn.Network
	inLen int
}

// Name implements Supervisor.
func (*Autoencoder) Name() string { return "autoencoder" }

// Fit implements Supervisor: trains the AE on calib inputs.
func (a *Autoencoder) Fit(net *nn.Network, calib Dataset) error {
	if calib == nil || calib.Len() == 0 {
		return errors.New("supervisor: autoencoder needs calibration data")
	}
	hidden := a.Hidden
	if hidden <= 0 {
		hidden = 24
	}
	epochs := a.Epochs
	if epochs <= 0 {
		epochs = 30
	}
	lr := a.LR
	if lr <= 0 {
		lr = 0.2
	}
	x0, _ := calib.Sample(0)
	a.inLen = x0.Len()
	src := prng.New(a.Seed)
	a.ae = nn.NewNetwork("supervisor-ae",
		nn.NewDense(a.inLen, hidden, src),
		nn.NewTanh(),
		nn.NewDense(hidden, a.inLen, src),
		nn.NewSigmoid(),
	)
	_, err := nn.TrainAutoencoder(a.ae, datasetAdapter{calib}, nn.TrainConfig{
		Epochs: epochs, BatchSize: 16, LR: lr, Momentum: 0.9, Seed: a.Seed + 1,
	})
	return err
}

// Score implements Supervisor: mean squared reconstruction error.
func (a *Autoencoder) Score(net *nn.Network, x *tensor.Tensor) float64 {
	if a.ae == nil {
		return math.Inf(1)
	}
	flat := x.Reshape(x.Len())
	out := a.ae.Forward(flat)
	loss, _ := nn.MSE(out, flat)
	return loss
}

// datasetAdapter bridges the local Dataset to nn.Dataset.
type datasetAdapter struct{ d Dataset }

func (a datasetAdapter) Len() int { return a.d.Len() }
func (a datasetAdapter) Sample(i int) (*tensor.Tensor, int) {
	return a.d.Sample(i)
}

// Standard returns the supervisor set used by experiment T1, with
// deterministic defaults.
func Standard() []Supervisor {
	return []Supervisor{
		&MaxSoftmax{},
		Entropy{},
		Margin{},
		&ODIN{},
		&Mahalanobis{},
		&Autoencoder{Seed: 7},
	}
}

// FitTemperature chooses the softmax temperature minimizing negative
// log-likelihood on a validation set, by golden-ish grid search over
// [0.25, 4]. The returned value plugs into MaxSoftmax.Temperature.
func FitTemperature(net *nn.Network, val Dataset) float64 {
	best, bestNLL := 1.0, math.Inf(1)
	for _, t := range []float64{0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 2.5, 3, 4} {
		var nll float64
		for i := 0; i < val.Len(); i++ {
			x, label := val.Sample(i)
			ps := softmaxProbs(net, x, t)
			p := ps[label]
			if p < 1e-12 {
				p = 1e-12
			}
			nll -= math.Log(p)
		}
		if nll < bestNLL {
			bestNLL = nll
			best = t
		}
	}
	return best
}

// Monitor is a fitted supervisor plus an accept threshold, the runtime
// component safety patterns embed. The threshold is the q-quantile of
// in-distribution scores, so the in-distribution rejection rate is
// approximately 1−q by construction.
type Monitor struct {
	Sup       Supervisor
	Threshold float64
}

// NewMonitor fits sup on calib and sets the threshold at the q-quantile of
// the calibration scores (e.g. q = 0.95 rejects ~5% of ID traffic).
func NewMonitor(sup Supervisor, net *nn.Network, calib Dataset, q float64) (*Monitor, error) {
	if err := sup.Fit(net, calib); err != nil {
		return nil, err
	}
	if calib.Len() == 0 {
		return nil, ErrNotFitted
	}
	scores := make([]float64, calib.Len())
	for i := 0; i < calib.Len(); i++ {
		x, _ := calib.Sample(i)
		scores[i] = sup.Score(net, x)
	}
	sort.Float64s(scores)
	return &Monitor{Sup: sup, Threshold: stats.Quantile(scores, q)}, nil
}

// Trusted reports whether the prediction on x should be trusted.
func (m *Monitor) Trusted(net *nn.Network, x *tensor.Tensor) bool {
	return m.Sup.Score(net, x) <= m.Threshold
}
