package supervisor

import (
	"math"

	"safexplain/internal/nn"
	"safexplain/internal/tensor"
)

// ODIN (Liang et al.) sharpens the max-softmax detector with two
// ingredients: temperature scaling and a small adversarial-style input
// perturbation toward higher confidence. In-distribution inputs gain more
// confidence from the perturbation than OOD inputs, widening the score
// gap. The score remains 1 − maxSoftmax_T(perturbed x).
type ODIN struct {
	// Temperature for the scaled softmax (default 2).
	Temperature float64
	// Epsilon is the input perturbation magnitude (default 0.01).
	Epsilon float64
}

// Name implements Supervisor.
func (*ODIN) Name() string { return "odin" }

// Fit implements Supervisor: ODIN has fixed hyperparameters; nothing is
// learned from calibration data.
func (o *ODIN) Fit(net *nn.Network, calib Dataset) error {
	if o.Temperature <= 0 {
		o.Temperature = 2
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.01
	}
	return nil
}

// Score implements Supervisor.
func (o *ODIN) Score(net *nn.Network, x *tensor.Tensor) float64 {
	temp := o.Temperature
	if temp <= 0 {
		temp = 2
	}
	eps := o.Epsilon
	if eps <= 0 {
		eps = 0.01
	}
	// Gradient of log max-softmax w.r.t. the input: backward seed is
	// (onehot(argmax) − softmax)/T on the logits.
	logits := net.Forward(x)
	probs := tensor.New(logits.Shape()...)
	scaled := tensor.New(logits.Shape()...)
	tensor.Scale(scaled, logits, float32(1/temp))
	tensor.Softmax(probs, scaled)
	top := probs.Argmax()
	seed := tensor.New(logits.Shape()...)
	for i := range seed.Data() {
		seed.Data()[i] = -probs.Data()[i] / float32(temp)
	}
	seed.Data()[top] += float32(1 / temp)
	gradIn := net.Backward(seed)
	net.ZeroGrad()

	// Perturb toward higher confidence and clamp to the input domain.
	perturbed := tensor.New(x.Shape()...)
	for i, v := range x.Data() {
		g := gradIn.Data()[i]
		step := float32(0)
		if g > 0 {
			step = float32(eps)
		} else if g < 0 {
			step = -float32(eps)
		}
		f := v + step
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		perturbed.Data()[i] = f
	}
	ps := softmaxProbs(net, perturbed, temp)
	best := 0.0
	for _, p := range ps {
		if p > best {
			best = p
		}
	}
	if math.IsNaN(best) {
		return 1
	}
	return 1 - best
}
