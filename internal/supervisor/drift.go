package supervisor

import (
	"errors"
	"math"
)

// DriftDetector watches the stream of supervisor scores during operation
// and raises an alarm when their level shifts upward — the gradual
// degradation (sensor aging, seasonal distribution drift) that
// per-frame thresholding misses because no single frame is anomalous
// enough. It implements a one-sided CUSUM over standardized scores:
//
//	S_0 = 0;  S_t = max(0, S_{t-1} + (z_t − k));  alarm when S_t > h
//
// with z the score standardized by the calibration statistics, k the
// slack (drift smaller than k·sigma is tolerated) and h the decision
// threshold. CUSUM is the classical optimal-ish change detector and is
// trivially certifiable: two additions and a comparison per frame.
type DriftDetector struct {
	// Mean and Std are the calibration statistics of the supervisor score
	// on in-distribution data.
	Mean, Std float64
	// K is the CUSUM slack in sigmas (default 0.5).
	K float64
	// H is the alarm threshold in sigmas (default 8).
	H float64

	s       float64
	n       int
	alarmed bool
}

// NewDriftDetector calibrates a detector from in-distribution scores.
func NewDriftDetector(calibScores []float64, k, h float64) (*DriftDetector, error) {
	if len(calibScores) < 2 {
		return nil, errors.New("supervisor: drift calibration needs >= 2 scores")
	}
	var sum, sq float64
	for _, v := range calibScores {
		sum += v
		sq += v * v
	}
	n := float64(len(calibScores))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance <= 0 {
		variance = 1e-12
	}
	if k <= 0 {
		k = 0.5
	}
	if h <= 0 {
		h = 8
	}
	return &DriftDetector{Mean: mean, Std: math.Sqrt(variance), K: k, H: h}, nil
}

// Observe feeds one operation-time score and reports whether the detector
// is in the alarmed state. Once alarmed it stays alarmed until Reset — an
// alarm is a maintenance event, not a per-frame veto.
func (d *DriftDetector) Observe(score float64) bool {
	d.n++
	z := (score - d.Mean) / d.Std
	d.s = math.Max(0, d.s+z-d.K)
	if d.s > d.H {
		d.alarmed = true
	}
	return d.alarmed
}

// Alarmed reports the alarm state.
func (d *DriftDetector) Alarmed() bool { return d.alarmed }

// Statistic returns the current CUSUM value (in sigmas), for telemetry.
func (d *DriftDetector) Statistic() float64 { return d.s }

// Observed returns the number of scores seen.
func (d *DriftDetector) Observed() int { return d.n }

// Reset clears the alarm and statistic after maintenance.
func (d *DriftDetector) Reset() {
	d.s = 0
	d.alarmed = false
}
