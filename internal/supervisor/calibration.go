package supervisor

import (
	"errors"
	"math"

	"safexplain/internal/nn"
)

// Calibration metrics. A supervisor thresholding softmax confidence
// implicitly assumes confidence ≈ probability-of-being-correct; the
// expected calibration error quantifies how far that assumption is from
// the truth, and temperature scaling (FitTemperature) is the standard
// one-parameter repair. Certification cares because "the system reports
// 99% confidence" is a human-facing claim that must mean something.

// ECE computes the Expected Calibration Error of the temperature-scaled
// softmax over ds with `bins` equal-width confidence bins:
//
//	ECE = Σ_b (n_b/N) · |accuracy(b) − meanConfidence(b)|
//
// 0 is perfectly calibrated; 1 is maximally miscalibrated.
func ECE(net *nn.Network, ds Dataset, temperature float64, bins int) (float64, error) {
	if ds.Len() == 0 {
		return 0, errors.New("supervisor: ECE over empty dataset")
	}
	if bins <= 0 {
		bins = 10
	}
	if temperature <= 0 {
		temperature = 1
	}
	counts := make([]int, bins)
	hits := make([]int, bins)
	confSum := make([]float64, bins)
	for i := 0; i < ds.Len(); i++ {
		x, label := ds.Sample(i)
		ps := softmaxProbs(net, x, temperature)
		best, conf := 0, 0.0
		for c, p := range ps {
			if p > conf {
				conf = p
				best = c
			}
		}
		b := int(conf * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
		confSum[b] += conf
		if best == label {
			hits[b]++
		}
	}
	var ece float64
	n := float64(ds.Len())
	for b := 0; b < bins; b++ {
		if counts[b] == 0 {
			continue
		}
		acc := float64(hits[b]) / float64(counts[b])
		conf := confSum[b] / float64(counts[b])
		ece += float64(counts[b]) / n * math.Abs(acc-conf)
	}
	return ece, nil
}
