package supervisor

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"safexplain/internal/nn"
	"safexplain/internal/tensor"
)

// Portfolio combines supervisors from different families into one
// detector. The evaluation suite's crispest finding (T1/T10/F3) is that
// no single score covers all failure kinds: softmax confidence catches
// misclassifications and adversarial inputs but is blind (even
// anti-correlated) on far OOD, while feature/input-space scores catch
// distribution shift but rank errors poorly. The portfolio takes the
// *max of calibrated member scores*: each member's score is converted to
// its quantile rank within that member's own in-distribution calibration
// scores, so "unusual for THIS detector" is comparable across members,
// and an input is as suspicious as the most-alarmed member says.
type Portfolio struct {
	Members []Supervisor

	// calib[i] holds member i's sorted calibration scores.
	calib [][]float64
}

// NewPortfolio returns a portfolio over the given members. The
// conventional pairing is one softmax-family and one feature-family
// member, e.g. NewPortfolio(&MaxSoftmax{}, &Mahalanobis{}).
func NewPortfolio(members ...Supervisor) *Portfolio {
	return &Portfolio{Members: members}
}

// Name implements Supervisor.
func (p *Portfolio) Name() string {
	names := make([]string, len(p.Members))
	for i, m := range p.Members {
		names[i] = m.Name()
	}
	return "portfolio(" + strings.Join(names, "+") + ")"
}

// Fit implements Supervisor: fits every member, then records each
// member's in-distribution score distribution for rank calibration.
func (p *Portfolio) Fit(net *nn.Network, calib Dataset) error {
	if len(p.Members) == 0 {
		return errors.New("supervisor: empty portfolio")
	}
	if calib == nil || calib.Len() == 0 {
		return errors.New("supervisor: portfolio needs calibration data")
	}
	p.calib = make([][]float64, len(p.Members))
	for i, m := range p.Members {
		if err := m.Fit(net, calib); err != nil {
			return fmt.Errorf("supervisor: portfolio member %s: %w", m.Name(), err)
		}
		scores := make([]float64, calib.Len())
		for j := 0; j < calib.Len(); j++ {
			x, _ := calib.Sample(j)
			scores[j] = m.Score(net, x)
		}
		sort.Float64s(scores)
		p.calib[i] = scores
	}
	return nil
}

// rank returns the quantile rank of v within sorted (fraction of
// calibration scores <= v), the member-local "how unusual is this".
func rank(sorted []float64, v float64) float64 {
	i := sort.SearchFloat64s(sorted, v)
	// SearchFloat64s gives the insertion point; advance over equal values
	// so ties rank as "at or below".
	for i < len(sorted) && sorted[i] == v {
		i++
	}
	return float64(i) / float64(len(sorted))
}

// Score implements Supervisor: the maximum member quantile rank.
func (p *Portfolio) Score(net *nn.Network, x *tensor.Tensor) float64 {
	if p.calib == nil {
		return 1 // fail-safe: unfitted portfolio trusts nothing
	}
	worst := 0.0
	for i, m := range p.Members {
		if r := rank(p.calib[i], m.Score(net, x)); r > worst {
			worst = r
		}
	}
	return worst
}

// StandardPortfolio returns the recommended pairing: calibrated softmax
// confidence (error/adversarial detection) plus Mahalanobis features
// (distribution-shift detection).
func StandardPortfolio() *Portfolio {
	return NewPortfolio(&MaxSoftmax{}, &Mahalanobis{})
}
