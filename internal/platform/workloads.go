package platform

// Workload models: deterministic address traces shaped like the inference
// kernels the FUSA library runs. The traces reproduce the access patterns
// that make DL timing cache-sensitive — strided input reads, sequential
// weight streaming, repeated reuse of small hot arrays — without needing
// the actual arithmetic, which contributes only the constant CPI term.

// Memory map: disjoint regions so workload arrays never alias.
const (
	regionInput  uint64 = 0x0001_0000
	regionWeight uint64 = 0x0010_0000
	regionOutput uint64 = 0x0020_0000
	elemSize     uint64 = 4 // float32/int32 elements
)

// ConvWorkload is a single conv2d layer's access trace: for every output
// element it streams a kernel window of the input and the corresponding
// weights, then writes the output once.
type ConvWorkload struct {
	InC, H, W   int
	OutC, K     int
	Stride, Pad int
}

// NewConvWorkload returns the conv workload used by T6/T7: 1→8 channels,
// 16×16 input, 3×3 kernel — the first layer of the case-study CNN.
func NewConvWorkload() ConvWorkload {
	return ConvWorkload{InC: 1, H: 16, W: 16, OutC: 8, K: 3, Stride: 1, Pad: 1}
}

// Name implements Workload.
func (c ConvWorkload) Name() string { return "conv2d" }

// Trace implements Workload.
func (c ConvWorkload) Trace() []uint64 {
	oh := (c.H+2*c.Pad-c.K)/c.Stride + 1
	ow := (c.W+2*c.Pad-c.K)/c.Stride + 1
	var t []uint64
	for o := 0; o < c.OutC; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= c.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= c.W {
								continue
							}
							inIdx := uint64((ic*c.H+iy)*c.W + ix)
							wIdx := uint64(((o*c.InC+ic)*c.K+ky)*c.K + kx)
							t = append(t, regionInput+inIdx*elemSize)
							t = append(t, regionWeight+wIdx*elemSize)
						}
					}
				}
				outIdx := uint64((o*oh+oy)*ow + ox)
				t = append(t, regionOutput+outIdx*elemSize)
			}
		}
	}
	return t
}

// Instructions implements Workload: one MAC-ish instruction per access.
func (c ConvWorkload) Instructions() uint64 { return uint64(len(c.Trace())) }

// HotSet implements Workload: the weight array, the classic lock target
// (small, reused for every output position).
func (c ConvWorkload) HotSet() []uint64 {
	n := uint64(c.OutC * c.InC * c.K * c.K)
	var hs []uint64
	for i := uint64(0); i < n; i++ {
		hs = append(hs, regionWeight+i*elemSize)
	}
	return hs
}

// DenseWorkload is a fully connected layer's trace: weights streamed
// sequentially, the input vector re-read per output neuron.
type DenseWorkload struct {
	In, Out int
}

// NewDenseWorkload returns the dense workload matching the case-study
// classifier head.
func NewDenseWorkload() DenseWorkload { return DenseWorkload{In: 384, Out: 32} }

// Name implements Workload.
func (d DenseWorkload) Name() string { return "dense" }

// Trace implements Workload.
func (d DenseWorkload) Trace() []uint64 {
	var t []uint64
	for o := 0; o < d.Out; o++ {
		for i := 0; i < d.In; i++ {
			t = append(t, regionInput+uint64(i)*elemSize)
			t = append(t, regionWeight+uint64(o*d.In+i)*elemSize)
		}
		t = append(t, regionOutput+uint64(o)*elemSize)
	}
	return t
}

// Instructions implements Workload.
func (d DenseWorkload) Instructions() uint64 { return uint64(len(d.Trace())) }

// HotSet implements Workload: the input vector — the only array small
// enough to pin that is reused across neurons.
func (d DenseWorkload) HotSet() []uint64 {
	var hs []uint64
	for i := 0; i < d.In; i++ {
		hs = append(hs, regionInput+uint64(i)*elemSize)
	}
	return hs
}

// CNNWorkload concatenates conv and dense traces — one end-to-end
// inference frame.
type CNNWorkload struct {
	Conv  ConvWorkload
	Dense DenseWorkload
}

// NewCNNWorkload returns the standard frame workload.
func NewCNNWorkload() CNNWorkload {
	return CNNWorkload{Conv: NewConvWorkload(), Dense: NewDenseWorkload()}
}

// Name implements Workload.
func (c CNNWorkload) Name() string { return "cnn-frame" }

// Trace implements Workload.
func (c CNNWorkload) Trace() []uint64 {
	return append(c.Conv.Trace(), c.Dense.Trace()...)
}

// Instructions implements Workload.
func (c CNNWorkload) Instructions() uint64 {
	return c.Conv.Instructions() + c.Dense.Instructions()
}

// HotSet implements Workload.
func (c CNNWorkload) HotSet() []uint64 {
	return append(c.Conv.HotSet(), c.Dense.HotSet()...)
}
