// Package platform is the embedded-platform timing simulator behind pillar
// P4: "computing platform configurations to regain determinism, and
// probabilistic timing analyses to handle the remaining non-determinism".
//
// The simulator is cycle-approximate, not cycle-accurate to any silicon:
// what matters for the reproduction is the *statistical structure* of
// execution times, which comes from exactly the mechanisms modelled here —
// cache hits vs misses under different placement/replacement policies,
// co-runner interference on a shared bus, and (for MBPTA) deliberate time
// randomization that turns systematic timing variation into an i.i.d.
// random variable EVT can bound.
//
// Supported configurations mirror the techniques the paper alludes to:
//
//   - LRU set-associative caches (conventional COTS behaviour)
//   - cache way-locking (preloaded lines never evicted — "regain
//     determinism" by construction)
//   - cache partitioning (co-runners confined to their own ways)
//   - random placement and random replacement (time-randomized
//     architectures, the PROXIMA-style MBPTA enabler)
//   - bus arbitration: TDMA (deterministic slots) or randomized
//     arbitration, with a configurable number of co-runners.
package platform

import (
	"fmt"

	"safexplain/internal/prng"
)

// ReplacementPolicy selects the cache eviction policy.
type ReplacementPolicy int

// Replacement policies.
const (
	// LRU evicts the least recently used way — deterministic, history-
	// dependent.
	LRU ReplacementPolicy = iota
	// RandomReplacement evicts a uniformly random way — time-randomized.
	RandomReplacement
)

// String returns the policy name.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case RandomReplacement:
		return "random"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// CacheConfig describes one cache.
type CacheConfig struct {
	Sets      int // number of sets (power of two)
	Ways      int // associativity
	LineBytes int // line size (power of two)

	Policy ReplacementPolicy
	// RandomPlacement hashes the set index with a per-run seed, the
	// time-randomized placement of MBPTA-friendly architectures.
	RandomPlacement bool
	// PartitionWays reserves this many ways for the task under analysis;
	// co-runner pollution only touches the remaining ways. 0 disables
	// partitioning (fully shared cache).
	PartitionWays int
}

type line struct {
	tag    uint64
	valid  bool
	locked bool
	used   uint64 // LRU timestamp
}

// Cache is one set-associative cache instance. Not safe for concurrent
// use.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint64
	lines     [][]line // [set][way]
	clock     uint64
	seed      uint64 // placement hash seed for this run
	rng       *prng.Source
}

// NewCache builds a cache for one measurement run. seed drives the
// randomized aspects (placement hash, random replacement); deterministic
// configurations ignore it.
func NewCache(cfg CacheConfig, seed uint64) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		panic(fmt.Sprintf("platform: invalid cache config %+v", cfg))
	}
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("platform: Sets and LineBytes must be powers of two")
	}
	c := &Cache{
		cfg:     cfg,
		setMask: uint64(cfg.Sets - 1),
		seed:    seed,
		rng:     prng.NewStream(seed, 0x9e3779b9),
	}
	for cfg.LineBytes>>c.lineShift > 1 {
		c.lineShift++
	}
	c.lines = make([][]line, cfg.Sets)
	for i := range c.lines {
		c.lines[i] = make([]line, cfg.Ways)
	}
	return c
}

// setIndex maps a line address to its set, optionally via the randomized
// placement hash.
func (c *Cache) setIndex(lineAddr uint64) int {
	if !c.cfg.RandomPlacement {
		return int(lineAddr & c.setMask)
	}
	// splitmix64-style parametric hash of (lineAddr, seed).
	z := lineAddr + c.seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z & c.setMask)
}

// Access looks up addr, allocating on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	lineAddr := addr >> c.lineShift
	set := c.lines[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].used = c.clock
			return true
		}
	}
	c.fill(set, lineAddr, false)
	return false
}

// fill allocates lineAddr into the set, evicting per policy. Locked lines
// are never evicted. The victim search is restricted to the task partition
// when partitioning is on (ways [0, PartitionWays)).
func (c *Cache) fill(set []line, lineAddr uint64, lock bool) {
	ways := len(set)
	limit := ways
	if c.cfg.PartitionWays > 0 && c.cfg.PartitionWays < ways {
		limit = c.cfg.PartitionWays
	}
	// Prefer an invalid way.
	for i := 0; i < limit; i++ {
		if !set[i].valid {
			set[i] = line{tag: lineAddr, valid: true, locked: lock, used: c.clock}
			return
		}
	}
	// Choose a victim among unlocked ways.
	victim := -1
	switch c.cfg.Policy {
	case RandomReplacement:
		// Collect unlocked candidates deterministically, then pick one.
		var candidates []int
		for i := 0; i < limit; i++ {
			if !set[i].locked {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) > 0 {
			victim = candidates[c.rng.Intn(len(candidates))]
		}
	default: // LRU
		var oldest uint64 = ^uint64(0)
		for i := 0; i < limit; i++ {
			if !set[i].locked && set[i].used < oldest {
				oldest = set[i].used
				victim = i
			}
		}
	}
	if victim < 0 {
		// Fully locked set: the new line bypasses the cache.
		return
	}
	set[victim] = line{tag: lineAddr, valid: true, locked: lock, used: c.clock}
}

// Lock preloads addr's line and pins it: it will hit on every later access
// and never be evicted (way-locking / cache lockdown).
func (c *Cache) Lock(addr uint64) {
	c.clock++
	lineAddr := addr >> c.lineShift
	set := c.lines[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].locked = true
			set[i].used = c.clock
			return
		}
	}
	c.fill(set, lineAddr, true)
}

// PolluteRandom models co-runner cache pollution on a shared cache: it
// invalidates one random unlocked line outside the task partition (or
// anywhere, if unpartitioned). r drives victim choice so pollution is part
// of the run's random state.
func (c *Cache) PolluteRandom(r *prng.Source) {
	set := c.lines[r.Intn(c.cfg.Sets)]
	start := 0
	if c.cfg.PartitionWays > 0 && c.cfg.PartitionWays < c.cfg.Ways {
		start = c.cfg.PartitionWays // partition shields ways [0, PartitionWays)
	}
	if start >= c.cfg.Ways {
		return
	}
	i := start + r.Intn(c.cfg.Ways-start)
	if !set[i].locked {
		set[i].valid = false
	}
}

// Stats reports the valid and locked line counts, for tests.
func (c *Cache) Stats() (valid, locked int) {
	for _, set := range c.lines {
		for _, l := range set {
			if l.valid {
				valid++
				if l.locked {
					locked++
				}
			}
		}
	}
	return valid, locked
}
