package platform

import (
	"testing"

	"safexplain/internal/prng"
	"safexplain/internal/stats"
)

func cfgByName(t testing.TB, name string) Config {
	t.Helper()
	for _, c := range StandardConfigs() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no config %q", name)
	return Config{}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 4, Ways: 2, LineBytes: 32}, 0)
	if c.Access(0x100) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x100) {
		t.Fatal("second access should hit")
	}
	// Same line, different byte: still a hit.
	if !c.Access(0x11f) {
		t.Fatal("same-line access should hit")
	}
	// Next line: miss.
	if c.Access(0x120) {
		t.Fatal("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 1 set × 2 ways; three distinct lines mapping to
	// the same set must evict the least recently used.
	c := NewCache(CacheConfig{Sets: 1, Ways: 2, LineBytes: 32, Policy: LRU}, 0)
	c.Access(0x000) // A
	c.Access(0x100) // B
	c.Access(0x000) // touch A (B is now LRU)
	c.Access(0x200) // C evicts B
	if !c.Access(0x000) {
		t.Fatal("A should survive")
	}
	if c.Access(0x100) {
		t.Fatal("B should have been evicted")
	}
}

func TestCacheLockedLinesSurvive(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 1, Ways: 2, LineBytes: 32, Policy: LRU}, 0)
	c.Lock(0x000)
	// Stream many conflicting lines.
	for i := 1; i <= 10; i++ {
		c.Access(uint64(i) * 0x100)
	}
	if !c.Access(0x000) {
		t.Fatal("locked line was evicted")
	}
	_, locked := c.Stats()
	if locked != 1 {
		t.Fatalf("locked count = %d", locked)
	}
}

func TestCacheFullyLockedSetBypasses(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 1, Ways: 2, LineBytes: 32, Policy: LRU}, 0)
	c.Lock(0x000)
	c.Lock(0x100)
	c.Access(0x200) // cannot allocate
	if c.Access(0x200) {
		t.Fatal("line in a fully locked set must not be cached")
	}
	if !c.Access(0x000) || !c.Access(0x100) {
		t.Fatal("locked lines must still hit")
	}
}

func TestCachePollutionRespectsPartition(t *testing.T) {
	cfg := CacheConfig{Sets: 2, Ways: 4, LineBytes: 32, Policy: LRU, PartitionWays: 2}
	c := NewCache(cfg, 1)
	// Fill the task partition (ways 0-1 of both sets): with 32-byte lines
	// and 2 sets, set = (addr>>5)&1, so lines 0/2 land in set 0 and lines
	// 1/3 in set 1.
	addrs := []uint64{0x000, 0x040, 0x020, 0x060}
	for _, a := range addrs {
		c.Access(a)
	}
	r := prng.New(2)
	for i := 0; i < 1000; i++ {
		c.PolluteRandom(r)
	}
	for _, a := range addrs {
		if !c.Access(a) {
			t.Fatalf("partitioned line %#x was polluted", a)
		}
	}
}

func TestCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	NewCache(CacheConfig{Sets: 3, Ways: 1, LineBytes: 32}, 0)
}

func TestWorkloadTracesDeterministic(t *testing.T) {
	for _, w := range []Workload{NewConvWorkload(), NewDenseWorkload(), NewCNNWorkload()} {
		a := w.Trace()
		b := w.Trace()
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("%s: bad trace lengths %d/%d", w.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trace not deterministic at %d", w.Name(), i)
			}
		}
		if w.Instructions() == 0 {
			t.Fatalf("%s: zero instructions", w.Name())
		}
		if len(w.HotSet()) == 0 {
			t.Fatalf("%s: empty hot set", w.Name())
		}
	}
}

func TestDeterministicConfigsZeroJitter(t *testing.T) {
	// The "regain determinism" claim: with locking + TDMA, the execution
	// time must be identical for every run seed.
	cfg := cfgByName(t, "locked-tdma")
	cfg.PollutionRate = 0 // locked lines + no pollution: fully deterministic
	w := NewConvWorkload()
	first := Run(cfg, w, 1)
	for seed := uint64(2); seed < 20; seed++ {
		if got := Run(cfg, w, seed); got != first {
			t.Fatalf("deterministic config varied: %d vs %d (seed %d)", got, first, seed)
		}
	}
}

func TestIsolatedLRUDeterministicPerInput(t *testing.T) {
	cfg := cfgByName(t, "lru-isolated")
	w := NewCNNWorkload()
	a := Run(cfg, w, 1)
	b := Run(cfg, w, 999)
	if a != b {
		t.Fatalf("isolated LRU should not depend on run seed: %d vs %d", a, b)
	}
}

func TestContentionIncreasesTimeAndJitter(t *testing.T) {
	w := NewConvWorkload()
	isolated := Campaign(cfgByName(t, "lru-isolated"), w, 30, 1)
	contended := Campaign(cfgByName(t, "lru-contended"), w, 30, 2)
	if stats.Mean(contended) <= stats.Mean(isolated) {
		t.Fatalf("contention did not slow execution: %v vs %v",
			stats.Mean(contended), stats.Mean(isolated))
	}
	loI, hiI := stats.MinMax(isolated)
	loC, hiC := stats.MinMax(contended)
	if hiC-loC <= hiI-loI {
		t.Fatalf("contention did not add jitter: range %v vs %v", hiC-loC, hiI-loI)
	}
}

func TestLockingReducesJitterUnderContention(t *testing.T) {
	w := NewConvWorkload()
	contended := Campaign(cfgByName(t, "lru-contended"), w, 40, 3)
	locked := Campaign(cfgByName(t, "locked-tdma"), w, 40, 4)
	_, hiC := stats.MinMax(contended)
	loC, _ := stats.MinMax(contended)
	loL, hiL := stats.MinMax(locked)
	if (hiL - loL) >= (hiC - loC) {
		t.Fatalf("locking+TDMA jitter %v not below contended %v", hiL-loL, hiC-loC)
	}
}

func TestPartitioningReducesJitter(t *testing.T) {
	w := NewConvWorkload()
	contended := Campaign(cfgByName(t, "lru-contended"), w, 40, 5)
	part := Campaign(cfgByName(t, "partitioned-tdma"), w, 40, 6)
	if stats.StdDev(part) >= stats.StdDev(contended) {
		t.Fatalf("partitioning stddev %v not below contended %v",
			stats.StdDev(part), stats.StdDev(contended))
	}
}

func TestRandomizedConfigProducesIIDSamples(t *testing.T) {
	// The MBPTA prerequisite: time-randomization makes execution times
	// pass independence and identical-distribution diagnostics.
	cfg := cfgByName(t, "time-randomized")
	w := NewConvWorkload()
	samples := Campaign(cfg, w, 300, 7)
	if p, err := stats.RunsTest(samples); err != nil || p < 0.01 {
		t.Fatalf("runs test rejects randomized samples: p=%v err=%v", p, err)
	}
	if p, err := stats.LjungBox(samples, 10); err != nil || p < 0.01 {
		t.Fatalf("Ljung-Box rejects randomized samples: p=%v err=%v", p, err)
	}
	half := len(samples) / 2
	if p, err := stats.KolmogorovSmirnov(samples[:half], samples[half:]); err != nil || p < 0.01 {
		t.Fatalf("KS rejects randomized samples: p=%v err=%v", p, err)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := cfgByName(t, "time-randomized")
	w := NewDenseWorkload()
	a := Campaign(cfg, w, 20, 42)
	b := Campaign(cfg, w, 20, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("campaign not reproducible from its seed")
		}
	}
}

func TestPolicyAndBusStrings(t *testing.T) {
	if LRU.String() != "LRU" || RandomReplacement.String() != "random" {
		t.Fatal("replacement policy names wrong")
	}
	if TDMA.String() != "TDMA" || RandomArbitration.String() != "random-arbitration" {
		t.Fatal("bus policy names wrong")
	}
}

func TestStandardConfigNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range StandardConfigs() {
		if seen[c.Name] {
			t.Fatalf("duplicate config %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(seen) != 5 {
		t.Fatalf("expected 5 configs, got %d", len(seen))
	}
}

func TestStaticBoundDominatesEveryRun(t *testing.T) {
	// Soundness: the static bound must exceed every measured execution
	// time on every configuration.
	w := NewConvWorkload()
	for _, cfg := range StandardConfigs() {
		bound := StaticBound(cfg, w)
		for _, v := range Campaign(cfg, w, 30, 11) {
			if uint64(v) > bound {
				t.Fatalf("%s: measured %v exceeds static bound %d", cfg.Name, v, bound)
			}
		}
	}
}

func TestStaticBoundPessimism(t *testing.T) {
	// The reason MBPTA exists: on a cache-friendly workload the static
	// bound is far above typical behaviour.
	w := NewConvWorkload()
	cfg := cfgByName(t, "time-randomized")
	bound := float64(StaticBound(cfg, w))
	mean := stats.Mean(Campaign(cfg, w, 30, 12))
	if bound < 1.5*mean {
		t.Fatalf("static bound %v suspiciously tight vs mean %v", bound, mean)
	}
}

func TestStaticBoundLockingCredit(t *testing.T) {
	// Locked configurations get hit-credit for the pinned lines, so their
	// static bound must be below the same config without locking.
	w := NewConvWorkload()
	locked := cfgByName(t, "locked-tdma")
	unlocked := locked
	unlocked.LockWorkingSet = false
	if StaticBound(locked, w) >= StaticBound(unlocked, w) {
		t.Fatal("locking did not reduce the static bound")
	}
}
