package platform

import (
	"fmt"

	"safexplain/internal/prng"
)

// BusPolicy selects the interconnect arbitration between the analyzed core
// and its co-runners.
type BusPolicy int

// Bus arbitration policies.
const (
	// TDMA gives every core a fixed slot: each miss waits a constant,
	// analyzable delay — the deterministic configuration.
	TDMA BusPolicy = iota
	// RandomArbitration models unregulated COTS arbitration: each miss
	// waits a random delay depending on co-runner load.
	RandomArbitration
)

// String returns the policy name.
func (b BusPolicy) String() string {
	switch b {
	case TDMA:
		return "TDMA"
	case RandomArbitration:
		return "random-arbitration"
	default:
		return fmt.Sprintf("BusPolicy(%d)", int(b))
	}
}

// Config is a full platform configuration.
type Config struct {
	Name string

	Cache CacheConfig

	// HitCycles / MissCycles are the access latencies; CPI is the base
	// cycles per instruction of the in-order core.
	HitCycles, MissCycles uint64
	CPI                   uint64

	Bus        BusPolicy
	SlotCycles uint64 // TDMA slot length / max random arbitration wait
	CoRunners  int    // contending cores on the shared bus and cache

	// PollutionRate is the per-access probability that co-runner activity
	// evicts one cache line (shared-cache interference). Partitioned
	// configurations shield the task's ways from it.
	PollutionRate float64

	// LockWorkingSet preloads and pins the workload's declared hot set
	// before measurement (way-locking).
	LockWorkingSet bool
}

// Workload is a program model: a deterministic memory-access trace plus an
// instruction count. HotSet lists the addresses a locking configuration
// pins (typically the weight arrays).
type Workload interface {
	Name() string
	Trace() []uint64
	Instructions() uint64
	HotSet() []uint64
}

// Run simulates one execution of w on the platform configuration and
// returns the cycle count. runSeed drives every randomized element
// (placement hash, random replacement, arbitration, pollution); fully
// deterministic configurations return the same count for every seed.
func Run(cfg Config, w Workload, runSeed uint64) uint64 {
	cache := NewCache(cfg.Cache, runSeed)
	rng := prng.NewStream(runSeed, 0x5bd1e995)
	if cfg.LockWorkingSet {
		for _, a := range w.HotSet() {
			cache.Lock(a)
		}
	}
	cycles := w.Instructions() * cfg.CPI
	pollute := cfg.PollutionRate > 0 && cfg.CoRunners > 0
	for _, addr := range w.Trace() {
		if pollute && rng.Float64() < cfg.PollutionRate*float64(cfg.CoRunners) {
			cache.PolluteRandom(rng)
		}
		if cache.Access(addr) {
			cycles += cfg.HitCycles
			continue
		}
		cycles += cfg.MissCycles + busDelay(cfg, rng)
	}
	return cycles
}

// busDelay returns the extra wait a miss suffers on the interconnect.
func busDelay(cfg Config, rng *prng.Source) uint64 {
	if cfg.CoRunners <= 0 || cfg.SlotCycles == 0 {
		return 0
	}
	switch cfg.Bus {
	case RandomArbitration:
		// Uniform wait in [0, coRunners*slot]: position in the arbitration
		// queue is random.
		return uint64(rng.Intn(int(cfg.SlotCycles)*cfg.CoRunners + 1))
	default: // TDMA
		// Constant worst-slot wait: deterministic by construction.
		return cfg.SlotCycles * uint64(cfg.CoRunners)
	}
}

// Campaign runs w on cfg `n` times with per-run seeds derived from seed and
// returns the execution times in cycles — the measurement protocol MBPTA
// consumes. Per-run seeds are independently mixed (splitmix64 over the run
// index) rather than drawn sequentially from one generator, so no residual
// structure of the seeding stream can leak into the inter-run correlation
// the i.i.d. diagnostics check.
func Campaign(cfg Config, w Workload, n int, seed uint64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(Run(cfg, w, mix64(seed, uint64(i))))
	}
	return out
}

// mix64 is a splitmix64-style finalizer over (seed, counter).
func mix64(seed, i uint64) uint64 {
	z := seed + i*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StaticBound returns the classical static WCET bound for w on cfg: every
// access is assumed to miss (no cache analysis) and every miss waits the
// full arbitration round. This is the deterministic-upper-bounding
// baseline MBPTA competes with — sound by construction, but pessimistic in
// exact proportion to how well the cache actually works. Experiment T7
// reports its pessimism factor next to the pWCET bounds.
//
// Locked configurations get the one concession static analysis can prove:
// accesses to locked (preloaded) lines are guaranteed hits.
func StaticBound(cfg Config, w Workload) uint64 {
	worstBus := uint64(0)
	if cfg.CoRunners > 0 {
		worstBus = cfg.SlotCycles * uint64(cfg.CoRunners)
	}
	locked := map[uint64]bool{}
	if cfg.LockWorkingSet {
		lineShift := uint(0)
		for cfg.Cache.LineBytes>>lineShift > 1 {
			lineShift++
		}
		// Only the lines that actually fit under locking stay locked; the
		// cache's own placement logic decides, so replay it.
		c := NewCache(cfg.Cache, 0)
		for _, a := range w.HotSet() {
			c.Lock(a)
		}
		for _, a := range w.HotSet() {
			if c.Access(a) {
				locked[a>>lineShift] = true
			}
		}
	}
	lineShift := uint(0)
	for cfg.Cache.LineBytes>>lineShift > 1 {
		lineShift++
	}
	cycles := w.Instructions() * cfg.CPI
	for _, addr := range w.Trace() {
		if locked[addr>>lineShift] {
			cycles += cfg.HitCycles
			continue
		}
		cycles += cfg.MissCycles + worstBus
	}
	return cycles
}

// baseCache is the shared geometry of the standard configurations: 64
// sets × 4 ways × 32-byte lines = 8 KiB, small enough that the case-study
// working sets exceed it and caching behaviour matters.
func baseCache() CacheConfig {
	return CacheConfig{Sets: 64, Ways: 4, LineBytes: 32, Policy: LRU}
}

func baseConfig(name string) Config {
	return Config{
		Name:       name,
		Cache:      baseCache(),
		HitCycles:  1,
		MissCycles: 80,
		CPI:        1,
		SlotCycles: 16,
	}
}

// StandardConfigs returns the five platform configurations of experiments
// T6/T7, from uncontrolled COTS to fully deterministic to time-randomized.
func StandardConfigs() []Config {
	isolated := baseConfig("lru-isolated")

	contended := baseConfig("lru-contended")
	contended.Bus = RandomArbitration
	contended.CoRunners = 3
	contended.PollutionRate = 0.02

	// Locking alone leaves the unlocked input/output lines exposed to
	// co-runner pollution (jitter survives); the deterministic deployment
	// combines lockdown of the hot set with partitioning of the remaining
	// ways, which is what this configuration models.
	locked := baseConfig("locked-tdma")
	locked.Bus = TDMA
	locked.CoRunners = 3
	locked.PollutionRate = 0.02
	locked.LockWorkingSet = true
	locked.Cache.PartitionWays = 2

	partitioned := baseConfig("partitioned-tdma")
	partitioned.Bus = TDMA
	partitioned.CoRunners = 3
	partitioned.PollutionRate = 0.02
	partitioned.Cache.PartitionWays = 2

	randomized := baseConfig("time-randomized")
	randomized.Cache.Policy = RandomReplacement
	randomized.Cache.RandomPlacement = true
	randomized.Bus = RandomArbitration
	randomized.CoRunners = 3
	randomized.PollutionRate = 0.02

	return []Config{isolated, contended, locked, partitioned, randomized}
}
