// Package fixed provides saturating fixed-point arithmetic and the integer
// quantization primitives used by the FUSA-grade inference engine.
//
// Safety standards (ISO 26262-6, EN 50128) discourage or constrain floating
// point in the highest integrity levels because rounding is mode-dependent
// and error propagation is hard to bound. This package offers the
// alternative: Q16.16 fixed-point scalars with saturating (never wrapping)
// arithmetic, and the affine int8 quantization scheme (scale, zero-point)
// with integer-only requantization, so a whole inference can run without a
// single float operation.
package fixed

import "math"

// Q16 is a signed Q16.16 fixed-point number: 16 integer bits, 16 fractional
// bits, range [-32768, 32768) with resolution 2^-16.
type Q16 int32

// One is the Q16.16 representation of 1.0.
const One Q16 = 1 << 16

const (
	// MaxQ16 and MinQ16 are the saturation rails.
	MaxQ16 Q16 = math.MaxInt32
	MinQ16 Q16 = math.MinInt32
)

// FromFloat converts a float64 to Q16.16, rounding to nearest and
// saturating out-of-range values.
func FromFloat(f float64) Q16 {
	scaled := math.Round(f * 65536)
	if scaled >= float64(MaxQ16) {
		return MaxQ16
	}
	if scaled <= float64(MinQ16) {
		return MinQ16
	}
	return Q16(scaled)
}

// Float returns the float64 value of q.
func (q Q16) Float() float64 { return float64(q) / 65536 }

// Add returns q + r with saturation.
func (q Q16) Add(r Q16) Q16 {
	s := int64(q) + int64(r)
	return satQ16(s)
}

// Sub returns q - r with saturation.
func (q Q16) Sub(r Q16) Q16 {
	s := int64(q) - int64(r)
	return satQ16(s)
}

// Mul returns q * r with saturation, rounding to nearest.
func (q Q16) Mul(r Q16) Q16 {
	p := int64(q) * int64(r)
	// Round to nearest: add half ulp before shifting.
	p += 1 << 15
	return satQ16(p >> 16)
}

// Div returns q / r with saturation. Division by zero saturates to the
// appropriately signed rail, which is the fail-operational convention:
// downstream range monitors flag the saturated value rather than the
// program trapping.
func (q Q16) Div(r Q16) Q16 {
	if r == 0 {
		if q < 0 {
			return MinQ16
		}
		return MaxQ16
	}
	p := (int64(q) << 16) / int64(r)
	return satQ16(p)
}

func satQ16(v int64) Q16 {
	if v > int64(MaxQ16) {
		return MaxQ16
	}
	if v < int64(MinQ16) {
		return MinQ16
	}
	return Q16(v)
}

// SatAdd32 returns a + b saturated to the int32 range.
func SatAdd32(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > math.MaxInt32 {
		return math.MaxInt32
	}
	if s < math.MinInt32 {
		return math.MinInt32
	}
	return int32(s)
}

// ClampInt8 clamps v to the int8 range.
func ClampInt8(v int32) int8 {
	if v > math.MaxInt8 {
		return math.MaxInt8
	}
	if v < math.MinInt8 {
		return math.MinInt8
	}
	return int8(v)
}
