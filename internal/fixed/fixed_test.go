package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQ16RoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 0.5, -0.25, 3.1415926, -1000.125} {
		q := FromFloat(f)
		if got := q.Float(); math.Abs(got-f) > 1.0/65536 {
			t.Errorf("round trip of %v gave %v", f, got)
		}
	}
}

func TestQ16One(t *testing.T) {
	if One.Float() != 1 {
		t.Fatalf("One = %v", One.Float())
	}
	if FromFloat(1) != One {
		t.Fatal("FromFloat(1) != One")
	}
}

func TestQ16Saturation(t *testing.T) {
	if FromFloat(1e9) != MaxQ16 {
		t.Fatal("positive overflow must saturate to MaxQ16")
	}
	if FromFloat(-1e9) != MinQ16 {
		t.Fatal("negative overflow must saturate to MinQ16")
	}
	// Add at the rail.
	if MaxQ16.Add(One) != MaxQ16 {
		t.Fatal("Add must saturate, not wrap")
	}
	if MinQ16.Sub(One) != MinQ16 {
		t.Fatal("Sub must saturate, not wrap")
	}
	big := FromFloat(30000)
	if big.Mul(big) != MaxQ16 {
		t.Fatal("Mul overflow must saturate")
	}
}

func TestQ16Arithmetic(t *testing.T) {
	a := FromFloat(2.5)
	b := FromFloat(1.5)
	if got := a.Add(b).Float(); got != 4 {
		t.Errorf("2.5+1.5 = %v", got)
	}
	if got := a.Sub(b).Float(); got != 1 {
		t.Errorf("2.5-1.5 = %v", got)
	}
	if got := a.Mul(b).Float(); math.Abs(got-3.75) > 1.0/65536 {
		t.Errorf("2.5*1.5 = %v", got)
	}
	if got := a.Div(b).Float(); math.Abs(got-5.0/3.0) > 1.0/65536 {
		t.Errorf("2.5/1.5 = %v", got)
	}
}

func TestQ16DivByZeroSaturates(t *testing.T) {
	if FromFloat(3).Div(0) != MaxQ16 {
		t.Fatal("positive/0 must saturate positive")
	}
	if FromFloat(-3).Div(0) != MinQ16 {
		t.Fatal("negative/0 must saturate negative")
	}
}

func TestQ16MulCommutative(t *testing.T) {
	check := func(a, b int32) bool {
		x, y := Q16(a), Q16(b)
		return x.Mul(y) == y.Mul(x)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQ16AddNeverWraps(t *testing.T) {
	// Property: saturating add is monotone — adding a positive value never
	// decreases the result.
	check := func(a int32, b int32) bool {
		x := Q16(a)
		d := Q16(b)
		if d < 0 {
			d = -d
		}
		if d < 0 { // MinInt32 negation edge
			d = MaxQ16
		}
		return x.Add(d) >= x
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSatAdd32(t *testing.T) {
	if SatAdd32(math.MaxInt32, 1) != math.MaxInt32 {
		t.Fatal("positive saturation failed")
	}
	if SatAdd32(math.MinInt32, -1) != math.MinInt32 {
		t.Fatal("negative saturation failed")
	}
	if SatAdd32(2, 3) != 5 {
		t.Fatal("in-range add wrong")
	}
}

func TestClampInt8(t *testing.T) {
	cases := []struct {
		in   int32
		want int8
	}{
		{200, 127}, {-200, -128}, {5, 5}, {127, 127}, {-128, -128},
	}
	for _, c := range cases {
		if got := ClampInt8(c.in); got != c.want {
			t.Errorf("ClampInt8(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
