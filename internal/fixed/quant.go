package fixed

import (
	"errors"
	"math"
)

// Affine int8 quantization: real = Scale * (q - ZeroPoint). This is the
// standard post-training quantization scheme; the requantization path below
// (integer multiplier + right shift, gemmlowp-style) lets int32 accumulators
// be rescaled to int8 with no floating point at inference time, which is
// what makes the quantized engine bit-exact across platforms.

// ErrBadRange is returned when a quantization range is empty or inverted.
var ErrBadRange = errors.New("fixed: invalid quantization range")

// QuantParams maps between real values and int8 codes.
type QuantParams struct {
	Scale     float32
	ZeroPoint int32
}

// ChooseParams derives asymmetric int8 parameters covering [lo, hi]. The
// range is widened to include zero so that zero-padding quantizes exactly,
// a correctness requirement for padded convolutions.
func ChooseParams(lo, hi float32) (QuantParams, error) {
	if math.IsNaN(float64(lo)) || math.IsNaN(float64(hi)) || lo > hi {
		return QuantParams{}, ErrBadRange
	}
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if lo == hi {
		// Degenerate all-zero range: any positive scale works.
		return QuantParams{Scale: 1, ZeroPoint: 0}, nil
	}
	const qlo, qhi = -128, 127
	scale := (hi - lo) / float32(qhi-qlo)
	zp := int32(math.Round(float64(qlo) - float64(lo)/float64(scale)))
	if zp < qlo {
		zp = qlo
	}
	if zp > qhi {
		zp = qhi
	}
	return QuantParams{Scale: scale, ZeroPoint: zp}, nil
}

// ChooseSymmetricParams derives symmetric parameters (zero-point 0) for
// weight tensors, covering [-maxAbs, maxAbs].
func ChooseSymmetricParams(maxAbs float32) (QuantParams, error) {
	if math.IsNaN(float64(maxAbs)) || maxAbs < 0 {
		return QuantParams{}, ErrBadRange
	}
	if maxAbs == 0 {
		return QuantParams{Scale: 1, ZeroPoint: 0}, nil
	}
	return QuantParams{Scale: maxAbs / 127, ZeroPoint: 0}, nil
}

// Quantize converts a real value to its int8 code, rounding to nearest and
// clamping.
func (p QuantParams) Quantize(v float32) int8 {
	q := int32(math.Round(float64(v)/float64(p.Scale))) + p.ZeroPoint
	return ClampInt8(q)
}

// Dequantize converts an int8 code back to its real value.
func (p QuantParams) Dequantize(q int8) float32 {
	return p.Scale * float32(int32(q)-p.ZeroPoint)
}

// QuantizeSlice quantizes src into dst (same length).
func (p QuantParams) QuantizeSlice(dst []int8, src []float32) {
	for i, v := range src {
		dst[i] = p.Quantize(v)
	}
}

// DequantizeSlice dequantizes src into dst (same length).
func (p QuantParams) DequantizeSlice(dst []float32, src []int8) {
	for i, q := range src {
		dst[i] = p.Dequantize(q)
	}
}

// Multiplier is a positive real factor represented as a normalized int32
// fixed-point multiplier and a right shift, so that
// round(x * real) == RoundingMulShift(x, M, shift) using integer ops only.
type Multiplier struct {
	M     int32 // normalized significand in [2^30, 2^31)
	Shift int   // total right shift applied after the high multiply
}

// NewMultiplier decomposes a positive real factor into the normalized
// multiplier form. Requantization factors inScale*wScale/outScale are
// usually < 1, but folded-BatchNorm convolutions can push them above 1
// (large effective weights, small output range); any factor below 2^24 is
// representable (shift stays >= 7 so rounding is exact).
func NewMultiplier(real float64) (Multiplier, error) {
	if !(real > 0 && real < 1<<24) {
		return Multiplier{}, errors.New("fixed: multiplier must be in (0, 2^24)")
	}
	frac, exp := math.Frexp(real) // real = frac * 2^exp, frac in [0.5, 1)
	m := int64(math.Round(frac * (1 << 31)))
	if m == 1<<31 { // rounding carried: 0.5 -> exactly 2^31
		m /= 2
		exp++
	}
	return Multiplier{M: int32(m), Shift: 31 - exp}, nil
}

// Apply computes round(x * real) with round-half-away-from-zero semantics,
// using only 64-bit integer arithmetic. Results outside the int32 range
// saturate (never wrap), matching the package-wide arithmetic contract.
func (m Multiplier) Apply(x int32) int32 {
	p := int64(x) * int64(m.M)
	// Rounding right shift by m.Shift bits.
	half := int64(1) << (m.Shift - 1)
	if p >= 0 {
		p += half
	} else {
		p += half - 1
	}
	p >>= uint(m.Shift)
	if p > math.MaxInt32 {
		return math.MaxInt32
	}
	if p < math.MinInt32 {
		return math.MinInt32
	}
	return int32(p)
}
