package fixed

import (
	"math"
	"testing"
	"testing/quick"

	"safexplain/internal/prng"
)

func TestChooseParamsCoversRange(t *testing.T) {
	p, err := ChooseParams(-1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Both endpoints must be representable within half a step.
	for _, v := range []float32{-1, 0, 3} {
		q := p.Quantize(v)
		back := p.Dequantize(q)
		if math.Abs(float64(back-v)) > float64(p.Scale)/2+1e-6 {
			t.Errorf("value %v round-trips to %v (scale %v)", v, back, p.Scale)
		}
	}
}

func TestChooseParamsZeroExact(t *testing.T) {
	// Zero must quantize exactly — padding correctness depends on it.
	cases := [][2]float32{{-1, 3}, {0.5, 2}, {-4, -0.25}, {-2, 2}}
	for _, c := range cases {
		p, err := ChooseParams(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Dequantize(p.Quantize(0)); got != 0 {
			t.Errorf("range %v: zero round-trips to %v", c, got)
		}
	}
}

func TestChooseParamsErrors(t *testing.T) {
	if _, err := ChooseParams(2, 1); err == nil {
		t.Fatal("inverted range should error")
	}
	if _, err := ChooseParams(float32(math.NaN()), 1); err == nil {
		t.Fatal("NaN range should error")
	}
}

func TestChooseParamsDegenerate(t *testing.T) {
	p, err := ChooseParams(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Quantize(0) != 0 || p.Dequantize(0) != 0 {
		t.Fatal("degenerate range must map 0 to 0")
	}
}

func TestSymmetricParams(t *testing.T) {
	p, err := ChooseSymmetricParams(2.54)
	if err != nil {
		t.Fatal(err)
	}
	if p.ZeroPoint != 0 {
		t.Fatal("symmetric zero-point must be 0")
	}
	if got := p.Quantize(2.54); got != 127 {
		t.Fatalf("max quantizes to %d, want 127", got)
	}
	if got := p.Quantize(-2.54); got != -127 {
		t.Fatalf("-max quantizes to %d, want -127", got)
	}
	if _, err := ChooseSymmetricParams(-1); err == nil {
		t.Fatal("negative maxAbs should error")
	}
}

func TestQuantizeClamps(t *testing.T) {
	p, _ := ChooseParams(-1, 1)
	if p.Quantize(100) != 127 {
		t.Fatal("out-of-range positive must clamp to 127")
	}
	if p.Quantize(-100) != -128 {
		t.Fatal("out-of-range negative must clamp to -128")
	}
}

func TestQuantizationErrorBound(t *testing.T) {
	// Property: for in-range values, |dequant(quant(v)) - v| <= scale/2.
	check := func(seed uint64) bool {
		r := prng.New(seed)
		lo := -r.Float32() * 10
		hi := r.Float32() * 10
		p, err := ChooseParams(lo, hi)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			v := lo + r.Float32()*(hi-lo)
			back := p.Dequantize(p.Quantize(v))
			if math.Abs(float64(back-v)) > float64(p.Scale)/2+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceHelpers(t *testing.T) {
	p, _ := ChooseParams(-1, 1)
	src := []float32{-1, -0.5, 0, 0.5, 1}
	q := make([]int8, len(src))
	back := make([]float32, len(src))
	p.QuantizeSlice(q, src)
	p.DequantizeSlice(back, q)
	for i := range src {
		if math.Abs(float64(back[i]-src[i])) > float64(p.Scale)/2+1e-6 {
			t.Fatalf("slice round trip: %v -> %v", src[i], back[i])
		}
	}
}

func TestNewMultiplierRange(t *testing.T) {
	if _, err := NewMultiplier(0); err == nil {
		t.Fatal("0 should be rejected")
	}
	if _, err := NewMultiplier(-0.5); err == nil {
		t.Fatal("negative should be rejected")
	}
	if _, err := NewMultiplier(1 << 25); err == nil {
		t.Fatal("huge factor should be rejected")
	}
	m, err := NewMultiplier(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.M < 1<<30 {
		t.Fatalf("multiplier not normalized: %d", m.M)
	}
}

func TestMultiplierAboveOne(t *testing.T) {
	// Folded-BatchNorm requantization can exceed 1; the integer path must
	// track the float reference there too.
	for _, real := range []float64{1.0, 1.5, 14.72, 100.3, 1e4} {
		m, err := NewMultiplier(real)
		if err != nil {
			t.Fatalf("NewMultiplier(%v): %v", real, err)
		}
		for _, x := range []int32{0, 1, -1, 127, -128, 5000, -5000} {
			got := m.Apply(x)
			want := int64(math.Round(float64(x) * real))
			if d := int64(got) - want; d > 1 || d < -1 {
				t.Errorf("Apply(%d, %v) = %d, want %d", x, real, got, want)
			}
		}
	}
}

func TestMultiplierApplySaturates(t *testing.T) {
	m, err := NewMultiplier(1e4)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Apply(math.MaxInt32); got != math.MaxInt32 {
		t.Fatalf("positive overflow gave %d, want saturation", got)
	}
	if got := m.Apply(math.MinInt32); got != math.MinInt32 {
		t.Fatalf("negative overflow gave %d, want saturation", got)
	}
}

func TestMultiplierMatchesFloat(t *testing.T) {
	// The integer requantization path must agree with the float reference
	// to within 1 ulp for all realistic accumulator values.
	reals := []float64{0.5, 0.25, 0.1, 0.0123, 0.9999, 1e-4}
	xs := []int32{0, 1, -1, 127, -128, 1000, -1000, 1 << 20, -(1 << 20)}
	for _, real := range reals {
		m, err := NewMultiplier(real)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			got := m.Apply(x)
			want := int32(math.Round(float64(x) * real))
			if d := got - want; d > 1 || d < -1 {
				t.Errorf("Apply(%d, %v) = %d, want %d", x, real, got, want)
			}
		}
	}
}

func TestMultiplierDeterministic(t *testing.T) {
	m, _ := NewMultiplier(0.037)
	r := prng.New(9)
	for i := 0; i < 1000; i++ {
		x := int32(r.Intn(1 << 24))
		if m.Apply(x) != m.Apply(x) {
			t.Fatal("Apply not deterministic")
		}
	}
}

func TestMultiplierProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := prng.New(seed)
		real := 1e-4 + 0.999*r.Float64()
		m, err := NewMultiplier(real)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			x := int32(r.Intn(1<<26) - 1<<25)
			got := m.Apply(x)
			want := int32(math.Round(float64(x) * real))
			if d := got - want; d > 1 || d < -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
