// Package core is the SAFEXPLAIN framework proper: it composes the
// substrates — deterministic DL (nn/qnn), trust supervisors, explainers,
// safety patterns, platform timing, and the traceability log — into a
// single certifiable System, via an explicit safety Lifecycle.
//
// Build runs the lifecycle the paper's flexible certification approach
// prescribes:
//
//	specify requirements → freeze data → train → quantize (FUSA library)
//	→ fit trust monitor → validate explainability → analyze timing
//	→ assemble safety pattern → deploy
//
// and records every stage in a hash-chained evidence log, discharging the
// standard assurance-case goals as verification evidence accumulates. The
// resulting System is the runtime object: Process() gives monitored,
// pattern-protected decisions; Explain() gives attribution evidence;
// Readiness() gives the certification snapshot that experiment T8 reports.
package core

import (
	"errors"
	"fmt"

	"safexplain/internal/data"
	"safexplain/internal/fdir"
	"safexplain/internal/fmea"
	"safexplain/internal/mbpta"
	"safexplain/internal/nn"
	"safexplain/internal/obs"
	"safexplain/internal/platform"
	"safexplain/internal/prng"
	"safexplain/internal/prof"
	"safexplain/internal/qnn"
	"safexplain/internal/safety"
	"safexplain/internal/supervisor"
	"safexplain/internal/tensor"
	"safexplain/internal/trace"
	"safexplain/internal/xai"
)

// PatternKind selects the safety pattern the lifecycle assembles.
type PatternKind string

// Supported pattern kinds.
const (
	PatternSingle     PatternKind = "single"
	PatternSupervised PatternKind = "supervised"
	PatternSimplex    PatternKind = "simplex"
)

// Config parameterizes a lifecycle run. Zero values get sensible defaults.
type Config struct {
	Name      string
	CaseStudy data.CaseStudy
	Pattern   PatternKind

	// Dataset knobs.
	Samples int
	Noise   float64
	Seed    uint64

	// Training knobs.
	Epochs int

	// Observability knobs. The monitor is on by default — its record
	// paths are zero-allocation, so it does not perturb the timing it
	// reports on (experiment T13 measures the probe effect).
	DisableObservability bool
	// FlightRecorderSpans sizes the span ring (default 256).
	FlightRecorderSpans int
	// Clock is the injected monotonic tick source shared by the trace
	// clock and the continuous profiler. Nil keeps v2 trace records off
	// (as before) and gives the profiler its own deterministic counter
	// clock, so profiling is always on without perturbing trace state.
	Clock func() uint64

	// Acceptance thresholds for the verification stages.
	MinAccuracy   float64 // float model test accuracy (default 0.8)
	MinAgreement  float64 // int8-vs-float prediction agreement (default 0.9)
	MinAUROC      float64 // supervisor OOD AUROC on inversion (default 0.7)
	MinStability  float64 // explanation stability (default 0.5)
	ExceedanceP   float64 // pWCET exceedance target (default 1e-9)
	TrustQuantile float64 // monitor calibration quantile (default 0.95)
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = c.CaseStudy.Name
	}
	if c.Pattern == "" {
		c.Pattern = PatternSupervised
	}
	if c.Samples <= 0 {
		c.Samples = 280
	}
	if c.Noise == 0 {
		c.Noise = 0.05
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.MinAccuracy == 0 {
		c.MinAccuracy = 0.8
	}
	if c.MinAgreement == 0 {
		c.MinAgreement = 0.9
	}
	if c.MinAUROC == 0 {
		c.MinAUROC = 0.7
	}
	if c.MinStability == 0 {
		c.MinStability = 0.5
	}
	if c.ExceedanceP == 0 {
		c.ExceedanceP = 1e-9
	}
	if c.TrustQuantile == 0 {
		c.TrustQuantile = 0.95
	}
	return c
}

// StageResult reports one lifecycle verification stage.
type StageResult struct {
	Stage  string
	Passed bool
	Metric float64
	Detail string
}

// System is the deployed CAIS component.
type System struct {
	Name    string
	Classes []string

	Net     *nn.Network
	Engine  *qnn.Engine
	Monitor *supervisor.Monitor
	Pattern safety.Pattern

	Log      *trace.Log
	Registry *trace.Registry
	Case     *trace.Goal
	// FMEA is the checked failure-modes worksheet of the release gate.
	FMEA *fmea.Worksheet
	// FDIR is the armed runtime health manager: online fault detection,
	// channel isolation and golden-image recovery around Pattern. Operate
	// routes every frame through it.
	FDIR *fdir.Runtime
	// Obs is the observability bundle: static metrics registry plus
	// flight recorder, shared with FDIR. Nil when
	// Config.DisableObservability was set.
	Obs *obs.Obs
	// Prof is the continuous hot-path profiler: per-stage sites over the
	// Operate pipeline plus one site per quantized kernel, frozen at
	// build time. Nil when Config.DisableObservability was set — every
	// record path is nil-safe, so the disabled cost is one comparison.
	Prof *prof.Profiler

	// Stages holds the lifecycle verification outcomes in order.
	Stages []StageResult

	// PWCET is the cycles bound at Config.ExceedanceP on the reference
	// platform workload, for schedule construction.
	PWCET float64

	// Profiler site ids, resolved once when the site table is frozen.
	profInfer, profVote, profSupervisor, profDrift prof.SiteID
	profKernels                                    []prof.SiteID

	train, test *data.Set
}

// ErrStageFailed is returned by Build when a verification stage misses its
// threshold.
var ErrStageFailed = errors.New("core: lifecycle verification stage failed")

// Requirement IDs registered by every lifecycle run.
const (
	ReqAccuracy = "REQ-ACC"
	ReqTrust    = "REQ-TRUST"
	ReqExplain  = "REQ-XAI"
	ReqDeterm   = "REQ-DET"
	ReqTiming   = "REQ-WCET"
	ReqPattern  = "REQ-PATTERN"
)

// Build runs the full safety lifecycle and returns the deployed System.
// All randomness derives from cfg.Seed: two Builds with equal configs
// produce bit-identical systems and evidence hashes.
func Build(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.CaseStudy.Generate == nil {
		return nil, errors.New("core: Config.CaseStudy is required")
	}
	s := &System{
		Name:     cfg.Name,
		Log:      &trace.Log{},
		Registry: trace.NewRegistry(),
	}
	if !cfg.DisableObservability {
		s.Obs = obs.New(obs.Config{Name: cfg.Name, FlightCapacity: cfg.FlightRecorderSpans})
	}

	// Stage 0 — requirements.
	reqs := []trace.Requirement{
		{ID: ReqAccuracy, Text: "classifier meets minimum task accuracy on frozen test data", Level: "SIL2"},
		{ID: ReqTrust, Text: "a runtime supervisor detects untrustworthy predictions", Level: "SIL3"},
		{ID: ReqExplain, Text: "predictions are explainable with stable attributions", Level: "SIL2"},
		{ID: ReqDeterm, Text: "deployed inference is bit-exact reproducible and allocation-free", Level: "SIL3"},
		{ID: ReqTiming, Text: "execution time is probabilistically bounded (pWCET)", Level: "SIL3"},
		{ID: ReqPattern, Text: "a safety pattern contains residual DL failures", Level: "SIL3"},
	}
	for _, r := range reqs {
		s.Registry.Add(r)
		s.Log.Append(trace.KindRequirement, r.ID, r.Text)
	}

	// Stage 1 — freeze data.
	set := cfg.CaseStudy.Generate(data.Config{N: cfg.Samples, Seed: cfg.Seed, Noise: cfg.Noise})
	s.Classes = set.Classes
	s.train, s.test = set.Split(0.75, cfg.Seed+1)
	dataID := "data:" + s.train.Hash()[:12]
	s.Log.Append(trace.KindDataset, dataID,
		fmt.Sprintf("case study %s: %d train / %d test samples, noise %.2f",
			cfg.CaseStudy.Name, s.train.Len(), s.test.Len(), cfg.Noise))

	// Stage 2 — train the float model: the modern stack (BatchNorm with
	// frozen calibrated statistics, Dropout regularization), which the
	// deployment stage folds away so the certified binary only contains
	// the quantizable construct set.
	src := prng.New(cfg.Seed + 2)
	trained := nn.NewNetwork(cfg.Name+"-cnn",
		nn.NewConv2D(1, 6, 3, 1, 1, src), nn.NewBatchNorm2D(6), nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(), nn.NewDropout(0.1, cfg.Seed+9),
		nn.NewDense(6*8*8, 24, src), nn.NewReLU(),
		nn.NewDense(24, set.NumClasses(), src))
	if err := nn.CalibrateBatchNorms(trained, s.train); err != nil {
		return nil, err
	}
	// Weight decay breaks the BN-gamma/head scale symmetry and gradient
	// clipping bounds every update step — without both, gamma can grow
	// unboundedly and wreck the folded model's quantization.
	loss, _, err := nn.TrainClassifier(trained, s.train, nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: 16, LR: 0.05, Momentum: 0.9,
		Decay: 1e-4, ClipNorm: 5, Seed: cfg.Seed + 3,
	})
	if err != nil {
		return nil, err
	}
	// Deployment form: BN folded into the convolution, Dropout removed.
	s.Net, err = nn.FoldBatchNorm(trained)
	if err != nil {
		return nil, err
	}
	s.Net.ID = cfg.Name + "-cnn"
	modelHash, err := nn.Hash(s.Net)
	if err != nil {
		return nil, err
	}
	modelID := "model:" + modelHash[:12]
	s.Log.Append(trace.KindTraining, "run:train-"+cfg.Name,
		fmt.Sprintf("SGD epochs=%d final loss=%.4f seed=%d (BN calibrated, folded for deployment)",
			cfg.Epochs, loss, cfg.Seed+3), dataID)
	s.Log.Append(trace.KindModel, modelID, s.Net.Describe(), dataID, "run:train-"+cfg.Name)

	// Verification: accuracy.
	acc := nn.Evaluate(s.Net, s.test)
	if err := s.verify(cfg, "accuracy", "test:accuracy", acc, cfg.MinAccuracy,
		fmt.Sprintf("test accuracy %.3f (threshold %.2f)", acc, cfg.MinAccuracy),
		ReqAccuracy, modelID, dataID); err != nil {
		return nil, err
	}

	// Stage 3 — FUSA-grade quantized engine + determinism evidence.
	calib := make([]*tensor.Tensor, 0, 60)
	for i := 0; i < 60 && i < s.train.Len(); i++ {
		x, _ := s.train.Sample(i)
		calib = append(calib, x)
	}
	s.Engine, err = qnn.Quantize(s.Net, calib)
	if err != nil {
		return nil, err
	}
	agree := 0
	replayOK := true
	for i := 0; i < s.test.Len(); i++ {
		x, _ := s.test.Sample(i)
		fc, _ := s.Net.Predict(x)
		qc, logits := s.Engine.Infer(x)
		first := append([]float32(nil), logits...)
		qc2, logits2 := s.Engine.Infer(x)
		if qc2 != qc {
			replayOK = false
		}
		for j := range first {
			if logits2[j] != first[j] {
				replayOK = false
			}
		}
		if fc == qc {
			agree++
		}
	}
	agreement := float64(agree) / float64(s.test.Len())
	detail := fmt.Sprintf("int8/float agreement %.3f, bit-exact replay %v", agreement, replayOK)
	pass := agreement >= cfg.MinAgreement && replayOK
	metric := agreement
	if !replayOK {
		metric = 0
	}
	if err := s.verifyBool(cfg, "determinism", "test:determinism", pass, metric, detail,
		ReqDeterm, modelID); err != nil {
		return nil, err
	}

	// Stage 4 — trust monitor + OOD evidence.
	s.Monitor, err = supervisor.NewMonitor(&supervisor.Mahalanobis{}, s.Net, s.train, cfg.TrustQuantile)
	if err != nil {
		return nil, err
	}
	rep, err := supervisor.EvaluateOOD(s.Monitor.Sup, s.Net, s.test, data.WithInversion(s.test))
	if err != nil {
		return nil, err
	}
	if err := s.verify(cfg, "trust", "test:trust", rep.AUROC, cfg.MinAUROC,
		fmt.Sprintf("supervisor %s AUROC %.3f FPR95 %.3f on inversion OOD",
			rep.Supervisor, rep.AUROC, rep.FPR95),
		ReqTrust, modelID); err != nil {
		return nil, err
	}

	// Stage 5 — explainability evidence.
	expl := xai.GradientInput{}
	var stability float64
	nExpl := 5
	if s.test.Len() < nExpl {
		nExpl = s.test.Len()
	}
	for i := 0; i < nExpl; i++ {
		x, _ := s.test.Sample(i)
		class, _ := s.Net.Predict(x)
		stability += xai.Stability(s.Net, expl, x, class, 0.05, 3, cfg.Seed+4)
	}
	stability /= float64(nExpl)
	if err := s.verify(cfg, "explainability", "test:explain", stability, cfg.MinStability,
		fmt.Sprintf("%s mean stability %.3f over %d samples", expl.Name(), stability, nExpl),
		ReqExplain, modelID); err != nil {
		return nil, err
	}

	// Stage 6 — timing evidence on the time-randomized platform.
	var randomized platform.Config
	for _, pc := range platform.StandardConfigs() {
		if pc.Name == "time-randomized" {
			randomized = pc
		}
	}
	samples := platform.Campaign(randomized, platform.NewCNNWorkload(), 400, cfg.Seed+5)
	analysis, err := mbpta.FitChecked(samples, 20, 0.01)
	if err != nil {
		return nil, fmt.Errorf("core: timing analysis: %w", err)
	}
	s.PWCET = analysis.PWCET(cfg.ExceedanceP)
	if err := s.verifyBool(cfg, "timing", "test:pwcet", s.PWCET > analysis.MaxObs, s.PWCET,
		fmt.Sprintf("pWCET(%.0e) = %.0f cycles on %s (max observed %.0f)",
			cfg.ExceedanceP, s.PWCET, randomized.Name, analysis.MaxObs),
		ReqTiming, modelID); err != nil {
		return nil, err
	}

	// Stage 7 — assemble the safety pattern and deploy.
	switch cfg.Pattern {
	case PatternSingle:
		s.Pattern = safety.SingleChannel{C: safety.NetChannel{Net: s.Net}}
	case PatternSimplex:
		fallbackClass := conservativeClass(cfg.CaseStudy.Name)
		s.Pattern = safety.Simplex{
			Primary: safety.NetChannel{Net: s.Net},
			Net:     s.Net,
			Mon:     s.Monitor,
			Fallback: safety.FuncChannel{ID: "verified-conservative",
				F: func(*tensor.Tensor) int { return fallbackClass }},
		}
	default:
		s.Pattern = safety.SupervisedChannel{C: safety.NetChannel{Net: s.Net}, Net: s.Net, Mon: s.Monitor}
	}
	s.Log.Append(trace.KindVerification, "test:pattern",
		fmt.Sprintf("pattern %s assembled at %s", s.Pattern.Name(), s.Pattern.Level()),
		ReqPattern, modelID)
	s.Stages = append(s.Stages, StageResult{Stage: "pattern", Passed: true, Metric: 1,
		Detail: s.Pattern.Name()})
	s.Obs.Span(-1, obs.StageBuild, int32(len(s.Stages)-1), 1)

	// Stage 8 — FMEA release gate: the standard failure-mode analysis must
	// be complete, its critical modes mitigated, and every claim grounded
	// in the evidence recorded above.
	s.FMEA = fmea.StandardWorksheet(cfg.Name)
	fmeaErr := s.FMEA.Check(s.Log, 150)
	fmeaDetail := fmt.Sprintf("%d modes over %d components, release gate at RPN>=150",
		len(s.FMEA.Modes), len(s.FMEA.Components))
	if fmeaErr != nil {
		fmeaDetail = fmeaErr.Error()
	}
	if err := s.verifyBool(cfg, "fmea", "test:fmea", fmeaErr == nil,
		float64(len(s.FMEA.Modes)), fmeaDetail, ReqPattern, modelID); err != nil {
		return nil, err
	}

	// Stage 9 — arm FDIR: capture the golden image of the deployed model,
	// calibrate the online detectors against the frozen training data, and
	// wrap the pattern in the runtime health manager. The thresholds are
	// recorded so the arming itself is reproducible evidence.
	golden, err := fdir.NewGolden(s.Net)
	if err != nil {
		return nil, fmt.Errorf("core: capture golden image: %w", err)
	}
	fallbackClass := conservativeClass(cfg.CaseStudy.Name)
	s.FDIR = fdir.NewRuntime(fdir.RuntimeConfig{Name: cfg.Name}, s.Pattern, nil, s.Net)
	s.FDIR.Golden = golden
	s.FDIR.Fallback = safety.FuncChannel{ID: "verified-conservative",
		F: func(*tensor.Tensor) int { return fallbackClass }}
	s.FDIR.Out = fdir.CalibrateOutputGuard(fdir.NetProbe{Net: s.Net}, s.train, 4, 8, 0)
	s.FDIR.In = fdir.CalibrateInputGuard(s.train, 1.0)
	s.FDIR.Log = s.Log
	s.FDIR.Obs = s.Obs
	s.Log.Append(trace.KindOperation, "fdir:"+cfg.Name,
		fmt.Sprintf("FDIR armed: golden image sha256 %.12s…, |logit| bound %.3g, input mean in [%.3f, %.3f]",
			golden.Hash(), s.FDIR.Out.MaxAbs, s.FDIR.In.MeanLo, s.FDIR.In.MeanHi),
		modelID, "test:pattern")

	// Arm observability as deployment evidence: the flight-recorder span
	// hash at this point covers the lifecycle build spans, so the chained
	// record pins which build history the runtime monitor starts from.
	if s.Obs != nil {
		s.Log.Append(trace.KindOperation, "obs:"+cfg.Name, s.Obs.Describe(), modelID)
	}

	// Arm the continuous profiler: a static site table — one site per
	// Operate stage plus one per quantized kernel — frozen here, so the
	// report layout is a build artifact and fleet merges reject drift.
	// Stage sites are unbudgeted (the operate tick domain is not the
	// platform cycle domain); the rt frame site carries the budget.
	if !cfg.DisableObservability {
		clock := cfg.Clock
		if clock == nil {
			clock = obs.NewCounterClock()
		}
		s.Prof = prof.New(prof.Config{Name: cfg.Name, Clock: clock, TraceID: s.Obs.TraceID})
		s.profInfer = s.Prof.AddSite("stage/infer", prof.KindStage, 0)
		s.profVote = s.Prof.AddSite("stage/vote", prof.KindStage, 0)
		s.profSupervisor = s.Prof.AddSite("stage/supervisor", prof.KindStage, 0)
		s.profDrift = s.Prof.AddSite("stage/drift", prof.KindStage, 0)
		kernels := s.Engine.KernelNames()
		s.profKernels = make([]prof.SiteID, len(kernels))
		for i, kn := range kernels {
			s.profKernels[i] = s.Prof.AddSite("kernel/"+kn, prof.KindKernel, 0)
		}
		s.Prof.Freeze()
		if err := s.Engine.SetProfiler(s.Prof, s.profKernels); err != nil {
			return nil, err
		}
		s.Log.Append(trace.KindOperation, "prof:"+cfg.Name,
			fmt.Sprintf("profiler armed: %d sites (4 stages, %d kernels), block size %d",
				4+len(kernels), len(kernels), prof.DefaultBlockSize), modelID)
	} else {
		s.profInfer, s.profVote = prof.NoSite, prof.NoSite
		s.profSupervisor, s.profDrift = prof.NoSite, prof.NoSite
	}

	s.Log.Append(trace.KindDeployment, "deploy:"+cfg.Name,
		fmt.Sprintf("pattern=%s engine=%s pwcet=%.0f", s.Pattern.Name(), s.Engine.ID, s.PWCET),
		modelID, "test:accuracy", "test:determinism", "test:trust", "test:explain",
		"test:pwcet", "test:pattern", "test:fmea")

	s.Case = buildAssuranceCase(cfg.Name)
	return s, nil
}

// conservativeClass returns the fail-safe class per domain: the answer
// that, if wrong, errs on the side of caution.
func conservativeClass(caseStudy string) int {
	switch caseStudy {
	case "railway":
		return data.RailObstacle
	case "automotive":
		return data.AutoPedestrian
	default:
		return 0
	}
}

// verify records a threshold-compared verification stage.
func (s *System) verify(cfg Config, stage, artifact string, metric, threshold float64, detail string, refs ...string) error {
	return s.verifyBool(cfg, stage, artifact, metric >= threshold, metric, detail, refs...)
}

// verifyBool records a pass/fail verification stage; evidence is only
// appended on pass, so an unmet requirement shows up as an orphan in the
// readiness report rather than as fake evidence.
func (s *System) verifyBool(cfg Config, stage, artifact string, pass bool, metric float64, detail string, refs ...string) error {
	s.Stages = append(s.Stages, StageResult{Stage: stage, Passed: pass, Metric: metric, Detail: detail})
	s.Obs.Span(-1, obs.StageBuild, int32(len(s.Stages)-1), metric)
	if !pass {
		s.Log.Append(trace.KindIncident, "fail:"+stage, detail, refs...)
		return fmt.Errorf("%w: %s (%s)", ErrStageFailed, stage, detail)
	}
	s.Log.Append(trace.KindVerification, artifact, detail, refs...)
	return nil
}

// buildAssuranceCase authors the standard GSN argument over the lifecycle
// evidence.
func buildAssuranceCase(name string) *trace.Goal {
	root := &trace.Goal{ID: "G0", Statement: name + " is acceptably safe for its integrity level",
		Strategy: "argue over the four SAFEXPLAIN pillars"}
	p1 := root.AddChild(&trace.Goal{ID: "G1", Statement: "predictions are explainable and their trust is monitored",
		Strategy: "explanation stability + supervisor detection evidence"})
	p1.AddChild(&trace.Goal{ID: "G1.1", Statement: "attributions are stable", Evidence: []string{"test:explain"}})
	p1.AddChild(&trace.Goal{ID: "G1.2", Statement: "untrustworthy predictions are detected", Evidence: []string{"test:trust"}})
	p2 := root.AddChild(&trace.Goal{ID: "G2", Statement: "residual DL failures are contained by a safety pattern"})
	p2.AddChild(&trace.Goal{ID: "G2.1", Statement: "a pattern at the required level is deployed", Evidence: []string{"test:pattern"}})
	p2.AddChild(&trace.Goal{ID: "G2.2", Statement: "failure modes are analyzed, mitigated, and grounded in evidence", Evidence: []string{"test:fmea"}})
	p3 := root.AddChild(&trace.Goal{ID: "G3", Statement: "the DL implementation meets FUSA constraints"})
	p3.AddChild(&trace.Goal{ID: "G3.1", Statement: "inference is bit-exact and allocation-free", Evidence: []string{"test:determinism"}})
	p3.AddChild(&trace.Goal{ID: "G3.2", Statement: "the trained function meets its accuracy target", Evidence: []string{"test:accuracy"}})
	p4 := root.AddChild(&trace.Goal{ID: "G4", Statement: "real-time behaviour is bounded"})
	p4.AddChild(&trace.Goal{ID: "G4.1", Statement: "a pWCET bound exists at the target exceedance", Evidence: []string{"test:pwcet"}})
	return root
}

// Verdict is one runtime decision with its trust context.
type Verdict struct {
	Decision safety.Decision
	// Class is the delivered class: the pattern's class, or the fallback
	// class for degraded outputs, or -1 when the system withheld output.
	Class int
}

// Process runs one input through the deployed pattern. Fallbacks are
// recorded as incidents in the evidence log.
func (s *System) Process(x *tensor.Tensor) Verdict {
	d := s.Pattern.Decide(x)
	v := Verdict{Decision: d, Class: d.Class}
	if d.Fallback {
		v.Class = d.FallbackClass
		s.Log.Append(trace.KindIncident, "incident:fallback", d.Reason)
	}
	return v
}

// Explain returns the attribution map for x toward the model's predicted
// class, using the lifecycle's validated explainer.
func (s *System) Explain(x *tensor.Tensor) *tensor.Tensor {
	class, _ := s.Net.Predict(x)
	return xai.GradientInput{}.Explain(s.Net, x, class)
}

// Readiness returns the certification-readiness snapshot (experiment T8).
func (s *System) Readiness() trace.Readiness {
	return trace.AssessReadiness(s.Log, s.Registry, s.Case)
}

// AttachProfiler re-homes the system onto p — typically a Fork of the
// build-time profiler, giving one fleet unit its own sample stores over
// the shared frozen site table (forked profiles merge by construction).
// The site ids resolved at build time remain valid because Fork preserves
// table positions. A nil p disarms profiling.
func (s *System) AttachProfiler(p *prof.Profiler) error {
	s.Prof = p
	if s.Engine == nil {
		return nil
	}
	if p == nil {
		return s.Engine.SetProfiler(nil, nil)
	}
	return s.Engine.SetProfiler(p, s.profKernels)
}

// NewDriftDetector builds a CUSUM drift detector calibrated on the
// system's own training data under its deployed supervisor — the
// operation-phase monitor for slow degradation that per-frame rejection
// misses. k and h follow supervisor.NewDriftDetector's conventions
// (defaults on 0).
func (s *System) NewDriftDetector(k, h float64) (*supervisor.DriftDetector, error) {
	scores := make([]float64, s.train.Len())
	for i := 0; i < s.train.Len(); i++ {
		x, _ := s.train.Sample(i)
		scores[i] = s.Monitor.Sup.Score(s.Net, x)
	}
	return supervisor.NewDriftDetector(scores, k, h)
}

// OperationReport summarizes an Operate run.
type OperationReport struct {
	Frames     int
	Delivered  int // trusted (or degraded-mode) outputs
	Fallbacks  int
	DriftAlarm bool
	AlarmFrame int // frame index of the drift alarm (-1 if none)

	// FDIR counters for this run (zero when the runtime is not armed).
	Anomalies        int
	Quarantines      int
	Restores         int // verified golden-image reloads
	ReturnsToService int // probation windows completed
}

// Operate runs the deployed system over a frame stream with all runtime
// monitors engaged: the FDIR health manager around the per-frame pattern
// decision (fallbacks become incidents, as in Process; detector anomalies
// drive isolation and golden-image recovery, every transition appended to
// the evidence log) and the drift detector across frames. A drift alarm
// is recorded once as a maintenance incident in the evidence log.
func (s *System) Operate(stream interface {
	Len() int
	Sample(i int) (*tensor.Tensor, int)
}, drift *supervisor.DriftDetector) OperationReport {
	rep := OperationReport{AlarmFrame: -1}
	var before fdir.Stats
	if s.FDIR != nil {
		before = s.FDIR.Stats()
	}
	o := s.Obs
	for i := 0; i < stream.Len(); i++ {
		x, _ := stream.Sample(i)
		rep.Frames++
		// Open the causal trace for this frame; the stages below attach
		// child spans (the FDIR runtime records its own detect → isolate
		// → recover → deliver chain inside Step).
		o.TraceBegin(i)
		var fallback bool
		var class int
		// Profile the decision stage: the FDIR step (or the raw pattern
		// decide) is the inference hot path, attributed to stage/infer;
		// the per-kernel sites inside qnn.Engine.Infer record under the
		// same profiler, so the stage total decomposes kernel by kernel.
		pb := s.Prof.Begin()
		if s.FDIR != nil {
			st := s.FDIR.Step(i, x, fdir.Signals{})
			s.Prof.End(s.profInfer, pb)
			fallback = st.Decision.Fallback
			class = st.Class
			if fallback {
				s.Log.Append(trace.KindIncident, "incident:fallback", st.Decision.Reason)
			}
		} else {
			v := s.Process(x)
			s.Prof.End(s.profInfer, pb)
			fallback = v.Decision.Fallback
			class = v.Class
			inferRef := o.TraceChild(obs.StageInfer, int32(class), 0, o.TraceRoot())
			vote := int32(0)
			if fallback {
				vote = 1
			}
			o.TraceChild(obs.StageVote, vote, float64(class), inferRef)
		}
		vb := s.Prof.Begin()
		if o != nil {
			o.Frames.Inc()
			vote := int32(0)
			if fallback {
				vote = 1
			}
			o.Span(i, obs.StageInfer, int32(class), 0)
			o.Span(i, obs.StageVote, vote, 0)
		}
		if fallback {
			rep.Fallbacks++
			if o != nil {
				o.Fallbacks.Inc()
			}
		} else {
			rep.Delivered++
			if o != nil {
				o.Delivered.Inc()
			}
		}
		s.Prof.End(s.profVote, vb)
		if drift != nil && !rep.DriftAlarm {
			sb := s.Prof.Begin()
			score := s.Monitor.Sup.Score(s.Net, x)
			s.Prof.End(s.profSupervisor, sb)
			if o != nil {
				o.TrustScore.Observe(score)
				o.Span(i, obs.StageSupervisor, 0, score)
			}
			db := s.Prof.Begin()
			alarmed := drift.Observe(score)
			s.Prof.End(s.profDrift, db)
			if alarmed {
				rep.DriftAlarm = true
				rep.AlarmFrame = i
				o.Span(i, obs.StageDrift, 1, drift.Statistic())
				o.TraceChild(obs.StageDrift, 1, drift.Statistic(), o.TraceRoot())
				s.Log.Append(trace.KindIncident, "incident:drift",
					fmt.Sprintf("CUSUM drift alarm at frame %d (statistic %.1f sigma)",
						i, drift.Statistic()))
			}
		}
		o.TraceEnd(i)
	}
	if s.FDIR != nil {
		after := s.FDIR.Stats()
		rep.Anomalies = after.Anomalies - before.Anomalies
		rep.Quarantines = after.Quarantines - before.Quarantines
		rep.Restores = after.Restores - before.Restores
		rep.ReturnsToService = after.Returns - before.Returns
	}
	if o != nil && o.Trace.Total() > 0 {
		// Link the causal-trace ring into the evidence chain, alongside
		// the flight-recorder hash AutoDump records: the chained hash
		// proves which causal history a downlinked reconstruction claims.
		detail := fmt.Sprintf("causal trace: %d spans over %d frames (%d overflowed), ring hash %.12s…",
			o.Trace.Total(), o.Trace.Frames(), o.Trace.Overflow(), o.Trace.Hash())
		if d := o.Down; d != nil {
			detail += "; " + d.Describe()
		}
		s.Log.Append(trace.KindOperation, "obs:trace", detail)
	}
	return rep
}

// TrainSet and TestSet expose the frozen datasets for evaluation
// harnesses.
func (s *System) TrainSet() *data.Set { return s.train }

// TestSet returns the frozen test partition.
func (s *System) TestSet() *data.Set { return s.test }
