package core

import (
	"errors"
	"sync"
	"testing"

	"safexplain/internal/data"
	"safexplain/internal/trace"
)

// One shared lifecycle build per pattern keeps the suite fast.
var (
	buildOnce sync.Once
	builtSys  *System
	buildErr  error
)

func builtSystem(t testing.TB) *System {
	t.Helper()
	buildOnce.Do(func() {
		builtSys, buildErr = Build(Config{
			CaseStudy: data.CaseStudy{Name: "railway", Generate: data.Railway},
			Pattern:   PatternSimplex,
			Seed:      1000,
		})
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtSys
}

func TestBuildRequiresCaseStudy(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Fatal("Build without a case study must error")
	}
}

func TestBuildCompletesAllStages(t *testing.T) {
	s := builtSystem(t)
	wantStages := []string{"accuracy", "determinism", "trust", "explainability", "timing", "pattern", "fmea"}
	if len(s.Stages) != len(wantStages) {
		t.Fatalf("stages: %+v", s.Stages)
	}
	for i, st := range s.Stages {
		if st.Stage != wantStages[i] {
			t.Fatalf("stage %d = %q, want %q", i, st.Stage, wantStages[i])
		}
		if !st.Passed {
			t.Fatalf("stage %q failed: %s", st.Stage, st.Detail)
		}
	}
	if s.Net == nil || s.Engine == nil || s.Monitor == nil || s.Pattern == nil {
		t.Fatal("system components missing")
	}
	if s.PWCET <= 0 {
		t.Fatal("no pWCET bound")
	}
}

func TestBuildEvidenceChainValid(t *testing.T) {
	s := builtSystem(t)
	if err := s.Log.Verify(); err != nil {
		t.Fatal(err)
	}
	// All six requirements covered, no orphans.
	if orphans := s.Registry.Orphans(s.Log); len(orphans) != 0 {
		t.Fatalf("orphan requirements: %v", orphans)
	}
}

func TestBuildReadinessComplete(t *testing.T) {
	s := builtSystem(t)
	r := s.Readiness()
	if !r.ChainOK {
		t.Fatal("chain not OK")
	}
	if r.Score() != 1 {
		t.Fatalf("readiness score %v, want 1 (case: \n%s)", r.Score(), s.Case.Render(s.Log))
	}
}

func TestAssuranceCaseFullySupported(t *testing.T) {
	s := builtSystem(t)
	if !s.Case.Supported(s.Log) {
		t.Fatalf("assurance case unsupported:\n%s", s.Case.Render(s.Log))
	}
}

func TestProcessTrustedAndFallback(t *testing.T) {
	s := builtSystem(t)
	test := s.TestSet()
	// In-distribution: mostly trusted outputs.
	trusted := 0
	for i := 0; i < test.Len(); i++ {
		x, _ := test.Sample(i)
		if v := s.Process(x); !v.Decision.Fallback {
			trusted++
			if v.Class < 0 || v.Class >= len(s.Classes) {
				t.Fatalf("class %d out of range", v.Class)
			}
		}
	}
	if float64(trusted)/float64(test.Len()) < 0.5 {
		t.Fatalf("only %d/%d ID inputs trusted", trusted, test.Len())
	}
	// Gross OOD: fallbacks occur, are logged as incidents, and carry the
	// conservative class (Simplex is fail-operational).
	before := len(s.Log.ByKind(trace.KindIncident))
	ood := data.WithInversion(test)
	fallbacks := 0
	for i := 0; i < ood.Len(); i++ {
		x, _ := ood.Sample(i)
		v := s.Process(x)
		if v.Decision.Fallback {
			fallbacks++
			if v.Class != data.RailObstacle {
				t.Fatalf("fallback class %d, want conservative %d", v.Class, data.RailObstacle)
			}
		}
	}
	if fallbacks == 0 {
		t.Fatal("no fallbacks on gross OOD")
	}
	after := len(s.Log.ByKind(trace.KindIncident))
	if after-before != fallbacks {
		t.Fatalf("incidents logged %d, fallbacks %d", after-before, fallbacks)
	}
	// The chain must still verify after runtime appends.
	if err := s.Log.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestExplainShape(t *testing.T) {
	s := builtSystem(t)
	x, _ := s.TestSet().Sample(0)
	attr := s.Explain(x)
	if attr.Len() != x.Len() {
		t.Fatalf("attribution length %d, want %d", attr.Len(), x.Len())
	}
}

func TestBuildFailsOnImpossibleThreshold(t *testing.T) {
	_, err := Build(Config{
		CaseStudy:   data.CaseStudy{Name: "railway", Generate: data.Railway},
		Seed:        2000,
		Epochs:      1,
		MinAccuracy: 0.999, // unattainable after one epoch
	})
	if !errors.Is(err, ErrStageFailed) {
		t.Fatalf("expected ErrStageFailed, got %v", err)
	}
}

func TestBuildDeterministicEvidence(t *testing.T) {
	// Two identical builds must produce identical model hashes — the
	// whole-lifecycle reproducibility claim.
	cfg := Config{
		CaseStudy: data.CaseStudy{Name: "space", Generate: data.Space},
		Seed:      3000,
		Epochs:    4,
		// Low thresholds: this test is about determinism, not quality.
		MinAccuracy: 0.3, MinAUROC: 0.3, MinStability: 0.1, MinAgreement: 0.5,
	}
	s1, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := s1.Log.Events(), s2.Log.Events()
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Hash != e2[i].Hash {
			t.Fatalf("event %d hash differs (%s): lifecycle not deterministic", i, e1[i].ID)
		}
	}
}

func TestConservativeClassPerDomain(t *testing.T) {
	if conservativeClass("railway") != data.RailObstacle {
		t.Fatal("railway conservative class wrong")
	}
	if conservativeClass("automotive") != data.AutoPedestrian {
		t.Fatal("automotive conservative class wrong")
	}
	if conservativeClass("space") != 0 {
		t.Fatal("default conservative class wrong")
	}
}

func TestPatternKindsAssemble(t *testing.T) {
	for _, kind := range []PatternKind{PatternSingle, PatternSupervised} {
		s, err := Build(Config{
			CaseStudy:   data.CaseStudy{Name: "automotive", Generate: data.Automotive},
			Pattern:     kind,
			Seed:        4000,
			Epochs:      6,
			MinAccuracy: 0.5, MinAUROC: 0.5, MinStability: 0.2,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if s.Pattern == nil {
			t.Fatalf("%s: no pattern", kind)
		}
	}
}

func TestOperatePhase(t *testing.T) {
	s := builtSystem(t)
	drift, err := s.NewDriftDetector(0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Clean operation: mostly delivered, no drift alarm.
	rep := s.Operate(s.TestSet(), drift)
	if rep.Frames != s.TestSet().Len() {
		t.Fatalf("frames %d", rep.Frames)
	}
	if rep.DriftAlarm {
		t.Fatal("drift alarm on clean stream")
	}
	if float64(rep.Delivered)/float64(rep.Frames) < 0.5 {
		t.Fatalf("delivered only %d/%d", rep.Delivered, rep.Frames)
	}
	// Degraded operation: the alarm must fire and be logged once.
	before := len(s.Log.ByKind(trace.KindIncident))
	degraded := data.WithGaussianNoise(s.TestSet(), 0.2, 777)
	rep2 := s.Operate(degraded, drift)
	if !rep2.DriftAlarm || rep2.AlarmFrame < 0 {
		t.Fatalf("no drift alarm on degraded stream: %+v", rep2)
	}
	driftIncidents := 0
	for _, e := range s.Log.ByKind(trace.KindIncident)[before:] {
		if e.ID == "incident:drift" {
			driftIncidents++
		}
	}
	if driftIncidents != 1 {
		t.Fatalf("drift incidents logged %d, want exactly 1", driftIncidents)
	}
	if err := s.Log.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOperateNilDrift(t *testing.T) {
	s := builtSystem(t)
	rep := s.Operate(s.TestSet(), nil)
	if rep.DriftAlarm || rep.AlarmFrame != -1 {
		t.Fatal("nil drift detector must never alarm")
	}
}

func TestFMEAAttachedAndGrounded(t *testing.T) {
	s := builtSystem(t)
	if s.FMEA == nil {
		t.Fatal("no FMEA worksheet attached")
	}
	if err := s.FMEA.Check(s.Log, 150); err != nil {
		t.Fatalf("deployed FMEA fails its gate: %v", err)
	}
}

func TestTrainTestSetsExposed(t *testing.T) {
	s := builtSystem(t)
	if s.TrainSet() == nil || s.TrainSet().Len() == 0 {
		t.Fatal("TrainSet empty")
	}
	if s.TestSet() == nil || s.TestSet().Len() == 0 {
		t.Fatal("TestSet empty")
	}
	// The split must be disjoint by construction: train+test = configured
	// samples.
	if s.TrainSet().Len()+s.TestSet().Len() != 280 {
		t.Fatalf("partition sizes %d+%d", s.TrainSet().Len(), s.TestSet().Len())
	}
}
