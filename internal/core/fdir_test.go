package core

import (
	"strings"
	"testing"

	"safexplain/internal/data"
	"safexplain/internal/fdir"
	"safexplain/internal/nn"
	"safexplain/internal/trace"
)

// cheapBuild runs a fast lifecycle for FDIR-specific tests so the shared
// fixture's runtime state is never perturbed.
func cheapBuild(t *testing.T, seed uint64) *System {
	t.Helper()
	s, err := Build(Config{
		CaseStudy: data.CaseStudy{Name: "railway", Generate: data.Railway},
		Pattern:   PatternSingle,
		Seed:      seed,
		Epochs:    4,
		// Low thresholds: these tests are about FDIR, not model quality.
		MinAccuracy: 0.3, MinAUROC: 0.3, MinStability: 0.1, MinAgreement: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildArmsFDIR(t *testing.T) {
	s := cheapBuild(t, 5000)
	if s.FDIR == nil {
		t.Fatal("Build did not arm the FDIR runtime")
	}
	if s.FDIR.Golden == nil || s.FDIR.Out == nil || s.FDIR.In == nil || s.FDIR.Fallback == nil {
		t.Fatal("FDIR runtime incompletely armed")
	}
	if !s.FDIR.Golden.Verify(s.Net) {
		t.Fatal("golden image does not match the deployed model")
	}
	armed := false
	for _, e := range s.Log.ByKind(trace.KindOperation) {
		if strings.HasPrefix(e.ID, "fdir:") && strings.Contains(e.Detail, "FDIR armed") {
			armed = true
		}
	}
	if !armed {
		t.Fatal("FDIR arming not recorded in the evidence log")
	}
}

// TestOperateRecoversFromSEU is the end-to-end acceptance path: weights
// corrupted in the field, FDIR detects and quarantines, the golden image
// repairs the model (content hash equals the pre-fault hash), and the
// channel returns to service after its probation window — all recorded in
// the evidence log.
func TestOperateRecoversFromSEU(t *testing.T) {
	s := cheapBuild(t, 5100)
	preHash, err := nn.Hash(s.Net)
	if err != nil {
		t.Fatal(err)
	}
	if err := fdir.InjectSEU(s.Net, 200, 5101); err != nil {
		t.Fatal(err)
	}
	if h, _ := nn.Hash(s.Net); h == preHash {
		t.Fatal("SEU injection did not corrupt the live image")
	}

	// Two operation passes: detection, repair and re-probation can span
	// more frames than one pass of the test set holds.
	rep := s.Operate(s.TestSet(), nil)
	rep2 := s.Operate(s.TestSet(), nil)
	if rep.Quarantines < 1 {
		t.Fatalf("SEU never quarantined: %+v", rep)
	}
	if rep.Restores < 1 {
		t.Fatalf("golden-image reload never ran: %+v", rep)
	}
	if rep.ReturnsToService+rep2.ReturnsToService < 1 {
		t.Fatalf("channel never returned to service: %+v then %+v", rep, rep2)
	}
	if rep.Anomalies == 0 {
		t.Fatalf("no anomalies recorded: %+v", rep)
	}

	postHash, err := nn.Hash(s.Net)
	if err != nil {
		t.Fatal(err)
	}
	if postHash != preHash {
		t.Fatalf("restored hash %s != pre-fault hash %s", postHash[:12], preHash[:12])
	}

	// Evidence: the quarantine is an incident, the reload an operation
	// record, and the chain still verifies.
	quarantined, reloaded := false, false
	for _, e := range s.Log.ByKind(trace.KindIncident) {
		if strings.HasPrefix(e.ID, "fdir:") && strings.Contains(e.Detail, "-> quarantined") {
			quarantined = true
		}
	}
	for _, e := range s.Log.ByKind(trace.KindOperation) {
		if strings.HasPrefix(e.ID, "fdir:") && strings.Contains(e.Detail, "golden-image reload") {
			reloaded = true
		}
	}
	if !quarantined || !reloaded {
		t.Fatalf("FDIR evidence missing: quarantine=%v reload=%v", quarantined, reloaded)
	}
	if err := s.Log.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOperateCleanStreamStaysHealthy(t *testing.T) {
	s := cheapBuild(t, 5200)
	rep := s.Operate(s.TestSet(), nil)
	if rep.Quarantines != 0 || rep.Restores != 0 {
		t.Fatalf("clean stream triggered FDIR: %+v", rep)
	}
	if s.FDIR.State() != fdir.Healthy {
		t.Fatalf("state %v after clean stream, want Healthy", s.FDIR.State())
	}
	if rep.Delivered == 0 {
		t.Fatal("clean stream delivered nothing")
	}
}
