package core

import (
	"strings"
	"testing"

	"safexplain/internal/data"
	"safexplain/internal/obs"
	"safexplain/internal/trace"
)

func TestBuildArmsObservability(t *testing.T) {
	s := builtSystem(t)
	if s.Obs == nil {
		t.Fatal("Build did not arm observability")
	}
	if s.FDIR.Obs != s.Obs {
		t.Fatal("FDIR runtime not sharing the system's obs bundle")
	}
	// Every verification stage leaves a build span. Checked on a fresh
	// build: the shared fixture's ring may have wrapped under other
	// tests' Operate runs.
	fresh := cheapBuild(t, 5800)
	var buildSpans int
	for _, sp := range fresh.Obs.Flight.Spans() {
		if sp.Stage == obs.StageBuild {
			buildSpans++
		}
	}
	if buildSpans != len(fresh.Stages) {
		t.Fatalf("build spans %d != stages %d", buildSpans, len(fresh.Stages))
	}
	// The arming is chained evidence, linking the span hash.
	armed := false
	for _, e := range s.Log.ByKind(trace.KindOperation) {
		if strings.HasPrefix(e.ID, "obs:") && strings.Contains(e.Detail, "flight capacity") {
			armed = true
		}
	}
	if !armed {
		t.Fatal("observability arming not recorded in the evidence log")
	}
}

func TestOperatePopulatesMetrics(t *testing.T) {
	s := cheapBuild(t, 5600)
	drift, err := s.NewDriftDetector(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Operate(s.TestSet(), drift)
	o := s.Obs
	if got := o.Frames.Value(); got != uint64(rep.Frames) {
		t.Fatalf("frames counter %d != report %d", got, rep.Frames)
	}
	if o.Delivered.Value()+o.Fallbacks.Value() != o.Frames.Value() {
		t.Fatalf("delivered %d + fallbacks %d != frames %d",
			o.Delivered.Value(), o.Fallbacks.Value(), o.Frames.Value())
	}
	if o.TrustScore.Count() == 0 {
		t.Fatal("no trust scores observed with a drift detector attached")
	}
	stages := map[obs.Stage]bool{}
	for _, sp := range o.Flight.Spans() {
		stages[sp.Stage] = true
	}
	for _, want := range []obs.Stage{obs.StageInfer, obs.StageVote, obs.StageFDIR, obs.StageSupervisor} {
		if !stages[want] {
			t.Fatalf("per-frame span %s missing (have %v)", want, stages)
		}
	}
	// The exported snapshot reflects the run.
	snap := o.Snapshot()
	if snap.System != s.Name || snap.Flight == nil || snap.Flight.Total == 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if !strings.Contains(snap.Prometheus(), "safexplain_frames_total") {
		t.Fatal("prometheus exposition missing frames_total")
	}
}

func TestDisableObservability(t *testing.T) {
	s, err := Build(Config{
		CaseStudy:            data.CaseStudy{Name: "railway", Generate: data.Railway},
		Pattern:              PatternSingle,
		Seed:                 5700,
		Epochs:               4,
		DisableObservability: true,
		MinAccuracy:          0.3, MinAUROC: 0.3, MinStability: 0.1, MinAgreement: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs != nil {
		t.Fatal("observability armed despite DisableObservability")
	}
	rep := s.Operate(s.TestSet(), nil)
	if rep.Frames == 0 {
		t.Fatal("operate failed without observability")
	}
	for _, e := range s.Log.Events() {
		if strings.HasPrefix(e.ID, "obs:") {
			t.Fatal("obs evidence recorded despite DisableObservability")
		}
	}
}
