package watch

import (
	"strings"
	"testing"
)

func TestParseRuleValid(t *testing.T) {
	cases := []struct {
		line string
		want Rule
	}{
		{"threshold queue_depth > 5", Rule{Kind: RuleThreshold, Metric: "queue_depth", Op: OpGT, Value: 5, For: 1}},
		{"threshold queue_depth <= -2.5 for 3", Rule{Kind: RuleThreshold, Metric: "queue_depth", Op: OpLE, Value: -2.5, For: 3}},
		{"rate frames_total window 4 < 3.5", Rule{Kind: RuleRate, Metric: "frames_total", Window: 4, Op: OpLT, Value: 3.5, For: 1}},
		{"rate frames_total window 1 >= 0 for 2", Rule{Kind: RuleRate, Metric: "frames_total", Window: 1, Op: OpGE, Value: 0, For: 2}},
		{"absence heartbeat_total for 7", Rule{Kind: RuleAbsence, Metric: "heartbeat_total", For: 7}},
		{"burn rt_frame_cycles bound 4 slo 0.99 window 8 > 1", Rule{Kind: RuleBurn, Metric: "rt_frame_cycles", Bound: 4, SLO: 0.99, Window: 8, Op: OpGT, Value: 1, For: 1}},
		{"burn h bound 0 slo 0.5 window 2 >= 2 for 5", Rule{Kind: RuleBurn, Metric: "h", Bound: 0, SLO: 0.5, Window: 2, Op: OpGE, Value: 2, For: 5}},
		{"threshold m:sub > 1 # trailing comment", Rule{Kind: RuleThreshold, Metric: "m:sub", Op: OpGT, Value: 1, For: 1}},
	}
	for _, tc := range cases {
		got, err := ParseRule(tc.line)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.line, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
		// Canonical round trip: String() reparses to the same rule.
		back, err := ParseRule(got.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", got.String(), err)
			continue
		}
		if back != got {
			t.Errorf("round trip of %q changed the rule: %+v vs %+v", tc.line, back, got)
		}
	}
}

func TestParseRuleInvalid(t *testing.T) {
	lines := []string{
		"",
		"   # only a comment",
		"frobnicate m > 1",
		"threshold",
		"threshold 9metric > 1",
		"threshold m == 1",
		"threshold m > NaN",
		"threshold m > Inf",
		"threshold m > 1 for 0",
		"threshold m > 1 for 99999999",
		"threshold m > 1 extra",
		"threshold m > 1 for 2 extra",
		"rate m > 1",
		"rate m window 0 > 1",
		"rate m window x > 1",
		"absence m",
		"absence m for",
		"absence m for -1",
		"absence m for 2 for 3",
		"burn h bound 64 slo 0.9 window 2 > 1",
		"burn h bound -1 slo 0.9 window 2 > 1",
		"burn h bound 4 slo 0 window 2 > 1",
		"burn h bound 4 slo 1 window 2 > 1",
		"burn h bound 4 slo 0.9 window 2 > ",
		"burn h bound 4 window 2 slo 0.9 > 1",
	}
	for _, line := range lines {
		if r, err := ParseRule(line); err == nil {
			t.Errorf("ParseRule(%q) accepted: %+v", line, r)
		}
	}
}

func TestParseRulesFile(t *testing.T) {
	src := `
# fleet watch rules
threshold queue_depth > 5 for 2

rate frames_total window 4 < 3.5   # stall
absence heartbeat_total for 7
burn rt_frame_cycles bound 4 slo 0.99 window 8 > 1
`
	rules, err := ParseRules(src)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	kinds := []RuleKind{RuleThreshold, RuleRate, RuleAbsence, RuleBurn}
	for i, k := range kinds {
		if rules[i].Kind != k {
			t.Errorf("rule %d kind = %v, want %v", i, rules[i].Kind, k)
		}
	}

	// Encode → parse round trip preserves the whole set.
	back, err := ParseRules(EncodeRules(rules))
	if err != nil {
		t.Fatalf("reparse of EncodeRules: %v", err)
	}
	if len(back) != len(rules) {
		t.Fatalf("round trip changed rule count: %d vs %d", len(back), len(rules))
	}
	for i := range rules {
		if back[i] != rules[i] {
			t.Errorf("round trip changed rule %d: %+v vs %+v", i, back[i], rules[i])
		}
	}

	// Errors carry the 1-based line number.
	_, err = ParseRules("threshold ok > 1\nbogus line here\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ParseRules error = %v, want a line 2 prefix", err)
	}
}

func TestRuleKindAndOpStrings(t *testing.T) {
	if RuleBurn.String() != "burn" || RuleAbsence.String() != "absence" {
		t.Error("RuleKind.String mismatch")
	}
	if OpGE.String() != ">=" || OpLT.String() != "<" {
		t.Error("Op.String mismatch")
	}
	if !strings.Contains(RuleKind(99).String(), "99") || !strings.Contains(Op(99).String(), "99") {
		t.Error("invalid enum String not diagnostic")
	}
	if !OpGT.compare(2, 1) || OpGT.compare(1, 1) || !OpLE.compare(1, 1) || OpLT.compare(2, 1) {
		t.Error("Op.compare mismatch")
	}
}
