// Package watch is the continuous-health layer over the obs substrate: a
// statically-allocated time-series ring store that samples frozen
// obs.Snapshot values at a fixed cadence, windowed derivations over the
// stored series (delta, rate, histogram quantile, staleness), and a
// declarative alert-rule engine (threshold, rate-of-change,
// absence/staleness, WCET burn-rate) whose alerts carry SHA-256 evidence
// hashes and land in the flight journal.
//
// The paper's safety argument needs *ongoing-monitoring* evidence, not
// point-in-time snapshots: a latency creep toward the WCET budget, a
// stalling pipeline stage, or a flapping tier link must be detected by
// the platform itself, continuously, with the same determinism and
// probe-effect discipline as the rest of the obs stack. The sample path
// (Layout.Fill + Store.Sample + rule evaluation) is therefore
// zero-allocation in steady state — proven dynamically by
// testing.AllocsPerRun and BenchmarkT18Watch — and every loop it runs is
// bounded by sizes frozen when the layout was built. Producing a
// snapshot to sample, and emitting an alert on a rule transition, are
// the exceptional paths and may allocate, exactly like obs.AutoDump.
//
// The package is replay-deterministic: no wall clock (ticks are caller
// supplied), no ambient randomness, no map iteration; float comparisons
// go through math.Float64bits.
//
//safexplain:deterministic
package watch

import (
	"errors"
	"fmt"
	"math"

	"safexplain/internal/obs"
)

// ErrLayout reports a snapshot whose metric layout drifted from the one
// the store was built over (registry redeclared, child replaced, merge
// shape changed). It is a static error so the sample path can reject
// drift without allocating.
var ErrLayout = errors.New("watch: snapshot layout drifted from the bound layout")

// histSpec pins one histogram's shape inside a snapshot spec.
type histSpec struct {
	name    string
	buckets int // len(Bounds)+1, the +Inf bucket included
}

// snapSpec pins the full metric layout of one input snapshot: Fill
// validates names positionally against it, so a drifted snapshot is
// rejected rather than silently mis-sampled.
type snapSpec struct {
	system   string
	counters []string
	gauges   []string
	hists    []histSpec
}

// histSeries locates one histogram's derived columns in the store.
type histSeries struct {
	name     string
	bounds   []float64
	count    int // column holding the cumulative observation count
	sum      int // column holding the cumulative sum
	bucket0  int // first bucket column; buckets are contiguous
	nbuckets int // len(bounds)+1
}

// Layout is the frozen mapping from a fixed list of snapshots to store
// columns: every counter and gauge gets one column; every histogram gets
// a count column, a sum column, and one column per bucket. It is built
// once, from representative snapshots, and shared by the store and the
// rule engine.
type Layout struct {
	specs     []snapSpec
	ncols     int
	index     map[string]int // scalar series name -> column
	hists     []histSeries
	histIndex map[string]int // histogram name -> hists index
}

// NewLayout freezes the metric layout of the given snapshots, in order.
// Metric names must be unique across all snapshots (the fleet and
// fleetnet registries use disjoint prefixes by construction).
func NewLayout(snaps []obs.Snapshot) (*Layout, error) {
	if len(snaps) == 0 {
		return nil, errors.New("watch: layout needs at least one snapshot")
	}
	l := &Layout{
		index:     make(map[string]int),
		histIndex: make(map[string]int),
	}
	claim := func(name string) error {
		if _, dup := l.index[name]; dup {
			return fmt.Errorf("watch: duplicate metric %q across layout snapshots", name)
		}
		if _, dup := l.histIndex[name]; dup {
			return fmt.Errorf("watch: duplicate metric %q across layout snapshots", name)
		}
		return nil
	}
	for _, s := range snaps {
		spec := snapSpec{system: s.System}
		for _, c := range s.Counters {
			if err := claim(c.Name); err != nil {
				return nil, err
			}
			l.index[c.Name] = l.ncols
			l.ncols++
			spec.counters = append(spec.counters, c.Name)
		}
		for _, g := range s.Gauges {
			if err := claim(g.Name); err != nil {
				return nil, err
			}
			l.index[g.Name] = l.ncols
			l.ncols++
			spec.gauges = append(spec.gauges, g.Name)
		}
		for _, h := range s.Histograms {
			if err := claim(h.Name); err != nil {
				return nil, err
			}
			hs := histSeries{
				name:     h.Name,
				bounds:   append([]float64(nil), h.Bounds...),
				count:    l.ncols,
				sum:      l.ncols + 1,
				bucket0:  l.ncols + 2,
				nbuckets: len(h.Buckets),
			}
			if hs.nbuckets != len(h.Bounds)+1 {
				return nil, fmt.Errorf("watch: histogram %q has %d buckets for %d bounds",
					h.Name, len(h.Buckets), len(h.Bounds))
			}
			l.ncols += 2 + hs.nbuckets
			l.histIndex[h.Name] = len(l.hists)
			l.hists = append(l.hists, hs)
			spec.hists = append(spec.hists, histSpec{name: h.Name, buckets: hs.nbuckets})
		}
		l.specs = append(l.specs, spec)
	}
	return l, nil
}

// Columns returns the total number of store columns the layout maps to.
func (l *Layout) Columns() int { return l.ncols }

// Fill reads the snapshots position-wise into vals (length Columns()),
// validating every metric name against the frozen layout. The snapshots
// must be passed in the same order the layout was built from. Fill is
// the first leg of the zero-allocation sample path.
//
//safexplain:hotpath
//safexplain:wcet
func (l *Layout) Fill(vals []float64, snaps []obs.Snapshot) error {
	if len(snaps) != len(l.specs) || len(vals) != l.ncols {
		return ErrLayout
	}
	col := 0
	//safexplain:bounded snapshot list frozen at layout build
	for i := range l.specs {
		spec := &l.specs[i]
		s := &snaps[i]
		if len(s.Counters) != len(spec.counters) ||
			len(s.Gauges) != len(spec.gauges) ||
			len(s.Histograms) != len(spec.hists) {
			return ErrLayout
		}
		//safexplain:bounded counter list frozen at layout build
		for j := range spec.counters {
			if s.Counters[j].Name != spec.counters[j] {
				return ErrLayout
			}
			vals[col] = float64(s.Counters[j].Value)
			col++
		}
		//safexplain:bounded gauge list frozen at layout build
		for j := range spec.gauges {
			if s.Gauges[j].Name != spec.gauges[j] {
				return ErrLayout
			}
			vals[col] = s.Gauges[j].Value
			col++
		}
		//safexplain:bounded histogram list frozen at layout build
		for j := range spec.hists {
			h := &s.Histograms[j]
			if h.Name != spec.hists[j].name || len(h.Buckets) != spec.hists[j].buckets {
				return ErrLayout
			}
			vals[col] = float64(h.Count)
			vals[col+1] = h.Sum
			col += 2
			//safexplain:bounded bucket count frozen at layout build
			for k := range h.Buckets {
				vals[col] = float64(h.Buckets[k])
				col++
			}
		}
	}
	return nil
}

// Store is the statically-allocated time-series ring: one float64 ring
// per column plus a tick ring, all sized at construction. Sampling
// overwrites the oldest slot; nothing grows after NewStore.
type Store struct {
	layout *Layout
	depth  int
	ticks  []int64
	cols   [][]float64
	n      int // total samples taken (ring holds the most recent min(n, depth))
}

// NewStore allocates a ring store of the given depth over the layout.
func NewStore(l *Layout, depth int) *Store {
	if depth < 2 {
		depth = 2
	}
	s := &Store{
		layout: l,
		depth:  depth,
		ticks:  make([]int64, depth),
		cols:   make([][]float64, l.ncols),
	}
	backing := make([]float64, l.ncols*depth)
	for c := range s.cols {
		s.cols[c] = backing[c*depth : (c+1)*depth]
	}
	return s
}

// Sample stores one filled value vector at the given tick — the second
// leg of the zero-allocation sample path.
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) Sample(tick int64, vals []float64) error {
	if len(vals) != len(s.cols) {
		return ErrLayout
	}
	slot := s.n % s.depth
	s.ticks[slot] = tick
	//safexplain:bounded column count frozen at layout build
	for c := range s.cols {
		s.cols[c][slot] = vals[c]
	}
	s.n++
	return nil
}

// Samples returns the total number of samples taken.
func (s *Store) Samples() int { return s.n }

// Depth returns the ring depth.
func (s *Store) Depth() int { return s.depth }

// span is the number of samples currently held.
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) span() int {
	if s.n < s.depth {
		return s.n
	}
	return s.depth
}

// at reads the value of col, back samples before the latest one.
// Requires 0 <= back < span().
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) at(col, back int) float64 {
	return s.cols[col][(s.n-1-back)%s.depth]
}

// latestCol reads a column's most recent sample.
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) latestCol(col int) (float64, bool) {
	if s.span() < 1 {
		return 0, false
	}
	return s.at(col, 0), true
}

// deltaCol is the change of col over the last window ticks, clamped for
// counter resets: a decrease (node restart, registry rebuild) is treated
// as a restart from zero, so the delta is the current value rather than
// a negative excursion. Requires window+1 held samples.
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) deltaCol(col, window int) (float64, bool) {
	if window <= 0 || s.span() < window+1 {
		return 0, false
	}
	cur := s.at(col, 0)
	d := cur - s.at(col, window)
	if d < 0 {
		d = cur
	}
	return d, true
}

// rateCol is deltaCol per tick.
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) rateCol(col, window int) (float64, bool) {
	d, ok := s.deltaCol(col, window)
	if !ok {
		return 0, false
	}
	return d / float64(window), true
}

// stalenessCol counts how many consecutive recent ticks col has held its
// current bit pattern: 0 means it changed at the latest sample, span()-1
// means it never changed within the ring. Bit comparison keeps float
// equality out of the replay-deterministic path.
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) stalenessCol(col int) (int, bool) {
	sp := s.span()
	if sp < 2 {
		return 0, false
	}
	cur := math.Float64bits(s.at(col, 0))
	stale := 0
	//safexplain:bounded ring depth frozen at store build
	for back := 1; back < sp; back++ {
		if math.Float64bits(s.at(col, back)) != cur {
			break
		}
		stale++
	}
	return stale, true
}

// quantileHist interpolates the q-quantile of the observations a
// histogram gained over the last window ticks (bucket deltas, linear
// interpolation inside the crossing bucket — the same scheme as
// obs.Histogram.Quantile, applied to a window instead of the cumulative
// distribution). ok is false until the window is full or when the
// window saw no observations.
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) quantileHist(h *histSeries, q float64, window int) (float64, bool) {
	if s.span() < window+1 {
		return 0, false
	}
	var total float64
	//safexplain:bounded bucket count frozen at layout build
	for k := 0; k < h.nbuckets; k++ {
		d, _ := s.deltaCol(h.bucket0+k, window)
		total += d
	}
	if total <= 0 {
		return 0, false
	}
	target := q * total
	cum := 0.0
	//safexplain:bounded bucket count frozen at layout build
	for k := 0; k < h.nbuckets; k++ {
		d, _ := s.deltaCol(h.bucket0+k, window)
		if cum+d >= target && d > 0 {
			lo := 0.0
			if k > 0 {
				lo = h.bounds[k-1]
			}
			if k == h.nbuckets-1 {
				// +Inf bucket: the last finite bound is the best answer.
				return h.bounds[len(h.bounds)-1], true
			}
			hi := h.bounds[k]
			return lo + (hi-lo)*(target-cum)/d, true
		}
		cum += d
	}
	return h.bounds[len(h.bounds)-1], true
}

// burnHist is the WCET burn rate over the last window ticks: the
// fraction of new observations that landed above the budget bound
// (bounds[boundIndex] — for a BudgetBounds histogram, index
// obs.BudgetBoundIndex is exactly the frame budget), divided by the SLO
// error allowance 1-slo. A burn rate of 1 consumes the error budget
// exactly as fast as the SLO permits; above 1 the budget is burning
// down. ok is false until the window is full.
//
//safexplain:hotpath
//safexplain:wcet
func (s *Store) burnHist(h *histSeries, boundIndex int, slo float64, window int) (float64, bool) {
	cd, ok := s.deltaCol(h.count, window)
	if !ok {
		return 0, false
	}
	if cd <= 0 {
		return 0, true
	}
	var below float64
	//safexplain:bounded bound index validated against frozen bucket count at bind
	for k := 0; k <= boundIndex; k++ {
		d, _ := s.deltaCol(h.bucket0+k, window)
		below += d
	}
	viol := cd - below
	if viol < 0 {
		viol = 0
	}
	return (viol / cd) / (1 - slo), true
}

// scalarColumn resolves a metric name to its scalar column: counters and
// gauges directly, histograms through their observation-count column (so
// rate/absence rules can watch a histogram's activity).
func (l *Layout) scalarColumn(name string) (int, bool) {
	if col, ok := l.index[name]; ok {
		return col, true
	}
	if hi, ok := l.histIndex[name]; ok {
		return l.hists[hi].count, true
	}
	return 0, false
}

// histogram resolves a metric name to its histogram series.
func (l *Layout) histogram(name string) (*histSeries, bool) {
	hi, ok := l.histIndex[name]
	if !ok {
		return nil, false
	}
	return &l.hists[hi], true
}

// Latest returns the most recent sample of a metric (histograms: the
// observation count).
func (s *Store) Latest(metric string) (float64, bool) {
	col, ok := s.layout.scalarColumn(metric)
	if !ok {
		return 0, false
	}
	return s.latestCol(col)
}

// Delta returns the counter-reset-clamped change of a metric over the
// last window ticks.
func (s *Store) Delta(metric string, window int) (float64, bool) {
	col, ok := s.layout.scalarColumn(metric)
	if !ok {
		return 0, false
	}
	return s.deltaCol(col, window)
}

// Rate returns the per-tick rate of a metric over the last window ticks.
func (s *Store) Rate(metric string, window int) (float64, bool) {
	col, ok := s.layout.scalarColumn(metric)
	if !ok {
		return 0, false
	}
	return s.rateCol(col, window)
}

// Staleness returns how many consecutive recent ticks a metric has been
// unchanged.
func (s *Store) Staleness(metric string) (int, bool) {
	col, ok := s.layout.scalarColumn(metric)
	if !ok {
		return 0, false
	}
	return s.stalenessCol(col)
}

// Quantile returns the q-quantile of a histogram's observations over the
// last window ticks.
func (s *Store) Quantile(hist string, q float64, window int) (float64, bool) {
	h, ok := s.layout.histogram(hist)
	if !ok {
		return 0, false
	}
	return s.quantileHist(h, q, window)
}

// BurnRate returns the SLO burn rate of a histogram against its declared
// bound at boundIndex over the last window ticks.
func (s *Store) BurnRate(hist string, boundIndex int, slo float64, window int) (float64, bool) {
	h, ok := s.layout.histogram(hist)
	if !ok || boundIndex < 0 || boundIndex >= len(h.bounds) || slo <= 0 || slo >= 1 {
		return 0, false
	}
	return s.burnHist(h, boundIndex, slo, window)
}
