package watch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"safexplain/internal/obs"
)

// Alert is one evidence-grade alert record: a rule transition (firing or
// resolved) at a watch tick, stamped with the emitting node and a
// SHA-256 evidence hash over the canonical JSON encoding (hash field
// empty while hashing — the same scheme as fleet common-mode alerts), so
// a relayed alert can be checked against the evidence chain at any tier.
type Alert struct {
	Origin    string  `json:"origin"`
	Rule      string  `json:"rule"`
	Metric    string  `json:"metric"`
	State     string  `json:"state"` // "firing" | "resolved"
	Tick      int64   `json:"tick"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`

	// TraceID, when non-empty, is the canonical 16-hex-digit id of the
	// worst-case exemplar the rule's histogram retained before the
	// transition — the exact trace that blew the budget, resolvable with
	// `safexplain trace -id`. Omitted from JSON (and therefore from the
	// evidence hash) when no exemplar was seen, so alerts from
	// exemplar-free sources hash exactly as before.
	TraceID string `json:"trace_id,omitempty"`

	EvidenceHash string `json:"evidence_hash"`
}

// Alert states.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// hashAlert computes the evidence hash: SHA-256 over the canonical JSON
// with the hash field empty.
func hashAlert(a Alert) string {
	a.EvidenceHash = ""
	blob, err := json.Marshal(a)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// EncodeAlert renders one alert as canonical one-line JSON — the wire
// payload alert relay carries up the tier tree.
func EncodeAlert(a Alert) ([]byte, error) {
	return json.Marshal(a)
}

// DecodeAlert parses one relayed alert payload and verifies its evidence
// hash. Pure: any input yields an alert or an error, never a panic.
func DecodeAlert(b []byte) (Alert, error) {
	var a Alert
	if err := json.Unmarshal(b, &a); err != nil {
		return Alert{}, fmt.Errorf("watch: corrupt alert payload: %w", err)
	}
	if a.EvidenceHash == "" || a.EvidenceHash != hashAlert(a) {
		return Alert{}, errors.New("watch: alert evidence hash mismatch")
	}
	return a, nil
}

// SortAlerts orders alerts canonically — (origin, tick, rule, state) —
// so a ledger merged from asynchronous relay arrivals serializes
// byte-identically regardless of interleaving.
func SortAlerts(alerts []Alert) {
	sort.Slice(alerts, func(i, j int) bool {
		a, b := alerts[i], alerts[j]
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.State < b.State
	})
}

// AlertsJSON renders an alert ledger as a canonical JSON envelope
// (alerts sorted, stable field order).
func AlertsJSON(origin string, alerts []Alert) ([]byte, error) {
	sorted := append([]Alert(nil), alerts...)
	SortAlerts(sorted)
	if sorted == nil {
		sorted = []Alert{}
	}
	return json.Marshal(struct {
		Origin string  `json:"origin"`
		Alerts []Alert `json:"alerts"`
	}{Origin: origin, Alerts: sorted})
}

// Health is a watcher's one-glance summary, served on /health.
type Health struct {
	Origin        string `json:"origin"`
	Status        string `json:"status"` // "ok" | "alerting"
	Tick          int64  `json:"tick"`
	Samples       int    `json:"samples"`
	Series        int    `json:"series"`
	Rules         int    `json:"rules"`
	Firing        int    `json:"firing"`
	AlertsTotal   uint64 `json:"alerts_total"`
	AlertsDropped uint64 `json:"alerts_dropped"`
}

// Config shapes a watcher. Zero values get defaults.
type Config struct {
	// Origin names the emitting node in alerts (default "watch").
	Origin string
	// Rules are the armed alert rules; every metric they name must
	// resolve in the bound layout.
	Rules []Rule
	// Depth is the ring depth in samples (default 128). Every rule's
	// window (and an absence rule's staleness bound) must fit inside it.
	Depth int
	// MaxAlerts bounds the retained alert ledger (default 64); overflow
	// drops the newest record and counts it, like every other bounded
	// buffer in the stack.
	MaxAlerts int
	// Journal, when set, receives one obs.StageWatch span per alert
	// transition (frame = tick, code = rule index, value = observed).
	Journal *obs.Flight
	// OnAlert, when set, observes each alert as it is emitted — the
	// relay hook. Called with the watcher lock held; must not call back.
	OnAlert func(Alert)
}

func (c Config) withDefaults() Config {
	if c.Origin == "" {
		c.Origin = "watch"
	}
	if c.Depth <= 0 {
		c.Depth = 128
	}
	if c.MaxAlerts <= 0 {
		c.MaxAlerts = 64
	}
	return c
}

// boundRule is one rule resolved against the layout, with its hysteresis
// state.
type boundRule struct {
	rule   Rule
	canon  string // pre-rendered canonical text, so firing never formats
	col    int    // scalar column (threshold, rate, absence)
	hist   *histSeries
	streak int
	firing bool

	// Latest exemplar the rule's histogram carried in a snapshot: the
	// worst observation of its scrape interval and the TraceID that
	// produced it. Attached to the rule's alerts so a burn-rate breach
	// names the trace to pull.
	exVal float64
	exID  string
}

// Watcher samples snapshots into the ring store and evaluates the armed
// rules each tick. The sample path (Observe without a rule transition)
// is zero-allocation; emitting an alert is the exceptional path and
// allocates. Methods are safe for concurrent use — the HTTP handlers
// read Health/Alerts while the cadence loop ticks.
type Watcher struct {
	mu      sync.Mutex
	cfg     Config      // immutable after New
	layout  *Layout     // immutable after New
	store   *Store      //safexplain:guardedby mu
	rules   []boundRule //safexplain:guardedby mu
	vals    []float64   //safexplain:guardedby mu
	alerts  []Alert     //safexplain:guardedby mu
	fired   uint64      //safexplain:guardedby mu
	dropped uint64      //safexplain:guardedby mu
	tick    int64       //safexplain:guardedby mu
}

// New binds the rules against the layout of the given representative
// snapshots and allocates the ring store. Every metric a rule names must
// exist in the layout; windows must fit the ring; burn rules must name a
// histogram and one of its declared bounds.
func New(cfg Config, snaps []obs.Snapshot) (*Watcher, error) {
	cfg = cfg.withDefaults()
	layout, err := NewLayout(snaps)
	if err != nil {
		return nil, err
	}
	w := &Watcher{
		cfg:    cfg,
		layout: layout,
		store:  NewStore(layout, cfg.Depth),
		vals:   make([]float64, layout.Columns()),
	}
	for _, r := range cfg.Rules {
		br := boundRule{rule: r, canon: r.String()}
		switch r.Kind {
		case RuleThreshold, RuleRate, RuleAbsence, RuleHeadroom:
			col, ok := layout.scalarColumn(r.Metric)
			if !ok {
				return nil, fmt.Errorf("watch: rule %q: metric %q not in the bound layout", br.canon, r.Metric)
			}
			br.col = col
		case RuleBurn:
			h, ok := layout.histogram(r.Metric)
			if !ok {
				return nil, fmt.Errorf("watch: rule %q: %q is not a histogram in the bound layout", br.canon, r.Metric)
			}
			if r.Bound >= len(h.bounds) {
				return nil, fmt.Errorf("watch: rule %q: bound index %d outside %q's %d declared bounds",
					br.canon, r.Bound, r.Metric, len(h.bounds))
			}
			if r.SLO <= 0 || r.SLO >= 1 {
				return nil, fmt.Errorf("watch: rule %q: slo %v outside (0,1)", br.canon, r.SLO)
			}
			br.hist = h
		default:
			return nil, fmt.Errorf("watch: rule %q: invalid kind", br.canon)
		}
		if r.Window >= cfg.Depth {
			return nil, fmt.Errorf("watch: rule %q: window %d does not fit ring depth %d", br.canon, r.Window, cfg.Depth)
		}
		if r.Kind == RuleAbsence && r.For >= cfg.Depth {
			return nil, fmt.Errorf("watch: rule %q: for %d does not fit ring depth %d", br.canon, r.For, cfg.Depth)
		}
		w.rules = append(w.rules, br)
	}
	return w, nil
}

// Observe is the cadence entry point: fill the value vector from the
// snapshots (validated against the frozen layout), store the sample at
// the given tick, and evaluate every rule. It returns the number of
// rules that newly transitioned to firing. Steady state — no layout
// drift, no rule transition — is zero-allocation.
func (w *Watcher) Observe(tick int64, snaps []obs.Snapshot) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.layout.Fill(w.vals, snaps); err != nil {
		return 0, err
	}
	if err := w.store.Sample(tick, w.vals); err != nil {
		return 0, err
	}
	w.noteExemplars(snaps)
	w.tick = tick
	return w.evalLocked(tick), nil
}

// noteExemplars retains, per burn rule, the latest exemplar its
// histogram carried in the sampled snapshots. String and scalar copies
// only — the steady-state Observe path stays allocation-free.
//
//safexplain:locked mu
func (w *Watcher) noteExemplars(snaps []obs.Snapshot) {
	for i := range w.rules {
		br := &w.rules[i]
		if br.rule.Kind != RuleBurn {
			continue
		}
		//safexplain:bounded snapshot and histogram counts are frozen by the layout
		for s := range snaps {
			for h := range snaps[s].Histograms {
				hs := &snaps[s].Histograms[h]
				if hs.Name == br.rule.Metric && hs.Exemplar != nil {
					br.exVal = hs.Exemplar.Value
					br.exID = hs.Exemplar.TraceID
				}
			}
		}
	}
}

// evalLocked evaluates every bound rule at tick and handles transitions.
//
//safexplain:locked mu
func (w *Watcher) evalLocked(tick int64) int {
	fired := 0
	for i := range w.rules {
		br := &w.rules[i]
		v, breach, ok := w.evalRule(br)
		if !ok {
			// Warmup: the window (or staleness baseline) is not yet full.
			// Rules stay silent rather than firing on partial data — the
			// false-positive hygiene T18 measures.
			br.streak = 0
			continue
		}
		if breach {
			br.streak++
		} else {
			br.streak = 0
		}
		need := br.rule.For
		if br.rule.Kind == RuleAbsence {
			need = 1 // the staleness bound is the temporal clause itself
		}
		switch {
		case br.streak >= need && !br.firing:
			br.firing = true
			w.fireLocked(i, br, tick, v, StateFiring)
			fired++
		case !breach && br.firing:
			br.firing = false
			w.fireLocked(i, br, tick, v, StateResolved)
		}
	}
	return fired
}

// evalRule computes one rule's observed value and breach state.
//
//safexplain:wcet
//safexplain:locked mu
func (w *Watcher) evalRule(br *boundRule) (v float64, breach, ok bool) {
	switch br.rule.Kind {
	case RuleThreshold:
		v, ok = w.store.latestCol(br.col)
		return v, ok && br.rule.Op.compare(v, br.rule.Value), ok
	case RuleRate:
		v, ok = w.store.rateCol(br.col, br.rule.Window)
		return v, ok && br.rule.Op.compare(v, br.rule.Value), ok
	case RuleAbsence:
		stale, sok := w.store.stalenessCol(br.col)
		return float64(stale), sok && stale >= br.rule.For, sok
	case RuleBurn:
		v, ok = w.store.burnHist(br.hist, br.rule.Bound, br.rule.SLO, br.rule.Window)
		return v, ok && br.rule.Op.compare(v, br.rule.Value), ok
	case RuleHeadroom:
		v, ok = w.store.latestCol(br.col)
		if !ok {
			return v, false, false
		}
		// Freshness gate: a headroom gauge that stopped moving means the
		// profiler (or its relay) stalled — stale margin clears the rule
		// rather than sustaining a false alert on old data.
		stale, sok := w.store.stalenessCol(br.col)
		if !sok || stale >= br.rule.Window {
			return v, false, true
		}
		return v, br.rule.Op.compare(v, br.rule.Value), true
	}
	return 0, false, false
}

// fireLocked emits one alert transition: evidence-hash it, retain it in
// the bounded ledger, span it into the flight journal, and hand it to
// the relay hook. This is the exceptional, allocating path.
//
//safexplain:locked mu
func (w *Watcher) fireLocked(ruleIdx int, br *boundRule, tick int64, v float64, state string) {
	a := Alert{
		Origin:    w.cfg.Origin,
		Rule:      br.canon,
		Metric:    br.rule.Metric,
		State:     state,
		Tick:      tick,
		Value:     v,
		Threshold: br.rule.Value,
		TraceID:   br.exID,
	}
	a.EvidenceHash = hashAlert(a)
	if len(w.alerts) < w.cfg.MaxAlerts {
		w.alerts = append(w.alerts, a)
	} else {
		w.dropped++
	}
	if state == StateFiring {
		w.fired++
	}
	if w.cfg.Journal != nil {
		w.cfg.Journal.Record(int(tick), obs.StageWatch, int32(ruleIdx), v)
	}
	if w.cfg.OnAlert != nil {
		w.cfg.OnAlert(a)
	}
}

// Alerts returns the retained alert ledger in canonical order.
func (w *Watcher) Alerts() []Alert {
	w.mu.Lock()
	out := append([]Alert(nil), w.alerts...)
	w.mu.Unlock()
	SortAlerts(out)
	return out
}

// Firing returns how many rules are currently in the firing state.
func (w *Watcher) Firing() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.firingLocked()
}

//safexplain:locked mu
func (w *Watcher) firingLocked() int {
	n := 0
	for i := range w.rules {
		if w.rules[i].firing {
			n++
		}
	}
	return n
}

// Health freezes the watcher's summary.
func (w *Watcher) Health() Health {
	w.mu.Lock()
	defer w.mu.Unlock()
	h := Health{
		Origin:        w.cfg.Origin,
		Status:        "ok",
		Tick:          w.tick,
		Samples:       w.store.Samples(),
		Series:        w.layout.Columns(),
		Rules:         len(w.rules),
		Firing:        w.firingLocked(),
		AlertsTotal:   w.fired,
		AlertsDropped: w.dropped,
	}
	if h.Firing > 0 {
		h.Status = "alerting"
	}
	return h
}

// Store exposes the underlying ring store for derivation queries (tests,
// ad-hoc inspection). The watcher keeps sampling into it; callers get
// point-in-time reads.
func (w *Watcher) Store() *Store {
	w.mu.Lock()
	s := w.store
	w.mu.Unlock()
	return s
}
