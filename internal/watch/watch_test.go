package watch

import (
	"errors"
	"math"
	"testing"

	"safexplain/internal/obs"
)

// testSnap builds one hand-rolled snapshot: a counter, a gauge and a
// 3-bound histogram — the smallest layout exercising every column kind.
func testSnap() obs.Snapshot {
	return obs.Snapshot{
		System:   "t",
		Counters: []obs.CounterSnap{{Name: "frames_total"}},
		Gauges:   []obs.GaugeSnap{{Name: "queue_depth"}},
		Histograms: []obs.HistogramSnap{{
			Name:    "frame_cycles",
			Bounds:  []float64{1, 2, 4},
			Buckets: []uint64{0, 0, 0, 0},
		}},
	}
}

func TestLayoutColumns(t *testing.T) {
	l, err := NewLayout([]obs.Snapshot{testSnap()})
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	// counter + gauge + histogram(count + sum + 4 buckets) = 8
	if got := l.Columns(); got != 8 {
		t.Fatalf("Columns = %d, want 8", got)
	}
}

func TestLayoutRejectsDuplicates(t *testing.T) {
	a, b := testSnap(), testSnap()
	if _, err := NewLayout([]obs.Snapshot{a, b}); err == nil {
		t.Fatal("NewLayout accepted duplicate metric names across snapshots")
	}
	if _, err := NewLayout(nil); err == nil {
		t.Fatal("NewLayout accepted an empty snapshot list")
	}
}

func TestFillDetectsDrift(t *testing.T) {
	base := testSnap()
	l, err := NewLayout([]obs.Snapshot{base})
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	vals := make([]float64, l.Columns())

	if err := l.Fill(vals, []obs.Snapshot{base}); err != nil {
		t.Fatalf("Fill on the layout's own snapshot: %v", err)
	}

	renamed := testSnap()
	renamed.Counters[0].Name = "frames_renamed_total"
	if err := l.Fill(vals, []obs.Snapshot{renamed}); !errors.Is(err, ErrLayout) {
		t.Fatalf("Fill on renamed counter = %v, want ErrLayout", err)
	}

	rebucketed := testSnap()
	rebucketed.Histograms[0].Buckets = []uint64{0, 0, 0}
	if err := l.Fill(vals, []obs.Snapshot{rebucketed}); !errors.Is(err, ErrLayout) {
		t.Fatalf("Fill on rebucketed histogram = %v, want ErrLayout", err)
	}

	if err := l.Fill(vals[:3], []obs.Snapshot{base}); !errors.Is(err, ErrLayout) {
		t.Fatalf("Fill with short vals = %v, want ErrLayout", err)
	}
	if err := l.Fill(vals, []obs.Snapshot{base, base}); !errors.Is(err, ErrLayout) {
		t.Fatalf("Fill with extra snapshot = %v, want ErrLayout", err)
	}
}

// feed samples the snapshot through a fresh fill each tick.
func feed(t *testing.T, s *Store, l *Layout, tick int64, snap obs.Snapshot) {
	t.Helper()
	vals := make([]float64, l.Columns())
	if err := l.Fill(vals, []obs.Snapshot{snap}); err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if err := s.Sample(tick, vals); err != nil {
		t.Fatalf("Sample: %v", err)
	}
}

func TestStoreDerivations(t *testing.T) {
	snap := testSnap()
	l, err := NewLayout([]obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("NewLayout: %v", err)
	}
	s := NewStore(l, 8)

	// tick 1: counter 0; tick 2: 4; tick 3: 8. Gauge constant.
	for i, v := range []uint64{0, 4, 8} {
		snap.Counters[0].Value = v
		snap.Gauges[0].Value = 7
		feed(t, s, l, int64(i+1), snap)
	}

	if v, ok := s.Latest("frames_total"); !ok || v != 8 {
		t.Errorf("Latest = %v,%v want 8,true", v, ok)
	}
	if d, ok := s.Delta("frames_total", 2); !ok || d != 8 {
		t.Errorf("Delta(2) = %v,%v want 8,true", d, ok)
	}
	if r, ok := s.Rate("frames_total", 2); !ok || r != 4 {
		t.Errorf("Rate(2) = %v,%v want 4,true", r, ok)
	}
	if _, ok := s.Rate("frames_total", 3); ok {
		t.Error("Rate over an unfilled window reported ok")
	}
	if st, ok := s.Staleness("queue_depth"); !ok || st != 2 {
		t.Errorf("Staleness = %v,%v want 2,true", st, ok)
	}
	if st, ok := s.Staleness("frames_total"); !ok || st != 0 {
		t.Errorf("Staleness of a moving counter = %v,%v want 0,true", st, ok)
	}
	if _, ok := s.Latest("no_such_metric"); ok {
		t.Error("Latest of an unknown metric reported ok")
	}
}

func TestStoreCounterResetClamp(t *testing.T) {
	snap := testSnap()
	l, _ := NewLayout([]obs.Snapshot{snap})
	s := NewStore(l, 8)

	// A node restart: the counter falls from 10 to 3. The delta clamps to
	// the post-restart value instead of going negative.
	for i, v := range []uint64{10, 3} {
		snap.Counters[0].Value = v
		feed(t, s, l, int64(i+1), snap)
	}
	if d, ok := s.Delta("frames_total", 1); !ok || d != 3 {
		t.Errorf("Delta across a reset = %v,%v want 3,true", d, ok)
	}
	if r, ok := s.Rate("frames_total", 1); !ok || r != 3 {
		t.Errorf("Rate across a reset = %v,%v want 3,true", r, ok)
	}
}

func TestStoreQuantileAndBurn(t *testing.T) {
	snap := testSnap()
	l, _ := NewLayout([]obs.Snapshot{snap})
	s := NewStore(l, 8)

	// Tick 1: empty histogram. Tick 2: 10 observations, 8 at <=2, 2 above
	// every bound (+Inf bucket).
	feed(t, s, l, 1, snap)
	snap.Histograms[0].Buckets = []uint64{5, 3, 0, 2}
	snap.Histograms[0].Count = 10
	snap.Histograms[0].Sum = 20
	feed(t, s, l, 2, snap)

	// Median: target 5 lands at the top of bucket 0 → bound 1.
	if q, ok := s.Quantile("frame_cycles", 0.5, 1); !ok || q != 1 {
		t.Errorf("Quantile(0.5) = %v,%v want 1,true", q, ok)
	}
	// p95: target 9.5 crosses the +Inf bucket → clamped to last bound 4.
	if q, ok := s.Quantile("frame_cycles", 0.95, 1); !ok || q != 4 {
		t.Errorf("Quantile(0.95) = %v,%v want 4,true", q, ok)
	}
	// Burn against bound index 1 (value 2): 2 of 10 violated, slo 0.9 →
	// (0.2)/(0.1) = 2 (up to float rounding of 1-0.9).
	if b, ok := s.BurnRate("frame_cycles", 1, 0.9, 1); !ok || math.Abs(b-2) > 1e-12 {
		t.Errorf("BurnRate = %v,%v want ~2,true", b, ok)
	}
	// A histogram's activity is visible to scalar derivations via the
	// count column.
	if d, ok := s.Delta("frame_cycles", 1); !ok || d != 10 {
		t.Errorf("Delta(hist count) = %v,%v want 10,true", d, ok)
	}
	// Bad bound index / SLO are rejected.
	if _, ok := s.BurnRate("frame_cycles", 7, 0.9, 1); ok {
		t.Error("BurnRate accepted an out-of-range bound index")
	}
	if _, ok := s.BurnRate("frame_cycles", 1, 1.5, 1); ok {
		t.Error("BurnRate accepted slo > 1")
	}
}

func TestStoreQuantileIdleWindow(t *testing.T) {
	snap := testSnap()
	l, _ := NewLayout([]obs.Snapshot{snap})
	s := NewStore(l, 8)
	feed(t, s, l, 1, snap)
	feed(t, s, l, 2, snap)
	if _, ok := s.Quantile("frame_cycles", 0.5, 1); ok {
		t.Error("Quantile over a window with no observations reported ok")
	}
	if b, ok := s.BurnRate("frame_cycles", 1, 0.9, 1); !ok || b != 0 {
		t.Errorf("BurnRate over an idle window = %v,%v want 0,true", b, ok)
	}
}

func TestStoreRingWrap(t *testing.T) {
	snap := testSnap()
	l, _ := NewLayout([]obs.Snapshot{snap})
	s := NewStore(l, 4)
	for i := 1; i <= 10; i++ {
		snap.Counters[0].Value = uint64(i * 2)
		feed(t, s, l, int64(i), snap)
	}
	if s.Samples() != 10 || s.Depth() != 4 {
		t.Fatalf("Samples/Depth = %d/%d, want 10/4", s.Samples(), s.Depth())
	}
	// Only depth-1 windows are derivable after wrap; values stay exact.
	if d, ok := s.Delta("frames_total", 3); !ok || d != 6 {
		t.Errorf("Delta(3) after wrap = %v,%v want 6,true", d, ok)
	}
	if _, ok := s.Delta("frames_total", 4); ok {
		t.Error("Delta wider than the ring reported ok")
	}
}

// --- obs.Snapshot edges as seen by the watcher (satellite coverage) ---

func TestWatcherEmptyRegistry(t *testing.T) {
	reg := obs.NewRegistry("empty")
	snaps := []obs.Snapshot{reg.Snapshot()}

	w, err := New(Config{Origin: "n0"}, snaps)
	if err != nil {
		t.Fatalf("New over an empty registry: %v", err)
	}
	if _, err := w.Observe(1, snaps); err != nil {
		t.Fatalf("Observe over an empty registry: %v", err)
	}
	h := w.Health()
	if h.Series != 0 || h.Samples != 1 || h.Status != "ok" {
		t.Errorf("Health = %+v, want 0 series, 1 sample, ok", h)
	}

	// A rule over a metric that does not exist must fail at bind time,
	// not silently never fire.
	rules, err := ParseRules("threshold ghost_metric > 1\n")
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if _, err := New(Config{Rules: rules}, snaps); err == nil {
		t.Fatal("New bound a rule over a metric absent from the layout")
	}
}

func TestWatcherCounterResetAfterRestart(t *testing.T) {
	snap := testSnap()
	rules, err := ParseRules("rate frames_total window 1 > 100\n")
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	w, err := New(Config{Origin: "n0", Rules: rules}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Healthy growth, then a restart back to a small value: the clamped
	// delta must not produce a huge rate spike (or a negative one).
	for i, v := range []uint64{1000, 1050, 7} {
		snap.Counters[0].Value = v
		fired, err := w.Observe(int64(i+1), []obs.Snapshot{snap})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if fired != 0 {
			t.Fatalf("rule fired across a counter reset at tick %d", i+1)
		}
	}
	if len(w.Alerts()) != 0 {
		t.Fatalf("alert ledger not empty after reset: %+v", w.Alerts())
	}
}

func TestWatcherStaleChildInMerge(t *testing.T) {
	// Two identically-declared child registries merged the way the fleet
	// aggregator merges unit snapshots.
	active := obs.NewRegistry("unit")
	activeFrames := active.Counter("frames_total", "frames")
	stale := obs.NewRegistry("unit")
	staleFrames := stale.Counter("frames_total", "frames")
	staleFrames.Add(5) // the stale child froze at some past value

	merged := func() obs.Snapshot {
		m := active.Snapshot().CloneMetrics()
		if err := m.Merge(stale.Snapshot()); err != nil {
			t.Fatalf("Merge: %v", err)
		}
		return m
	}

	rules, err := ParseRules("absence frames_total for 2\n")
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	w, err := New(Config{Origin: "agg", Rules: rules}, []obs.Snapshot{merged()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tick := int64(0)
	observe := func() int {
		tick++
		fired, err := w.Observe(tick, []obs.Snapshot{merged()})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		return fired
	}

	// One child stalls but the other keeps producing: the merged counter
	// still moves every tick, so the absence rule must stay quiet.
	for i := 0; i < 4; i++ {
		activeFrames.Inc()
		if fired := observe(); fired != 0 {
			t.Fatalf("absence fired while one child was still active (round %d)", i)
		}
	}

	// Both children stall: the merged counter freezes and absence fires
	// once the staleness bound is reached.
	fired := 0
	for i := 0; i < 3; i++ {
		fired += observe()
	}
	if fired != 1 {
		t.Fatalf("absence transitions with both children stalled = %d, want 1", fired)
	}
	alerts := w.Alerts()
	if len(alerts) != 1 || alerts[0].State != StateFiring || alerts[0].Metric != "frames_total" {
		t.Fatalf("alert ledger = %+v, want one firing frames_total alert", alerts)
	}
}
