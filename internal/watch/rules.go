package watch

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The alert-rule grammar is line-oriented: one rule per line, '#' starts
// a comment, blank lines are skipped. Tokens are space-separated.
//
//	threshold <metric> <op> <value> [for <n>]
//	rate <metric> window <w> <op> <value> [for <n>]
//	absence <metric> for <n>
//	burn <hist> bound <i> slo <q> window <w> > <value> [for <n>]
//	headroom <metric> <op> <value> fresh <w> [for <n>]
//
// threshold compares a metric's latest sample; rate compares its
// per-tick rate over a window of <w> ticks; absence fires when a metric
// has not changed for <n> consecutive ticks (a stalled stage or a silent
// child); burn compares the WCET burn rate of a histogram against its
// own declared bound at index <i> — for a BudgetBounds histogram, index
// obs.BudgetBoundIndex is exactly 1.0x the frame budget, so the SLO
// budget comes straight from the registry's histogram bounds rather
// than a second copy of the number. headroom compares a live
// pWCET-headroom gauge (fleetnet's prof_min_headroom_ratio) like
// threshold, but only while the gauge is fresh — unchanged for <w> or
// more consecutive ticks (a stalled profiler, a dark relay tier) the
// rule clears rather than false-firing on stale margin. `for <n>`
// requires the breach to hold n consecutive ticks before the rule fires
// (hysteresis).
//
// ParseRules is a pure function: it never panics on any input
// (FuzzWatchRuleDecode), and everything it accepts re-encodes to a
// canonical form that parses back to the same rule.

// RuleKind tags one alert rule's evaluation mode.
type RuleKind uint8

// Rule kinds.
const (
	RuleInvalid   RuleKind = iota
	RuleThreshold          // latest sample vs a bound
	RuleRate               // per-tick rate over a window vs a bound
	RuleAbsence            // metric unchanged for N consecutive ticks
	RuleBurn               // WCET burn rate of a histogram vs a bound
	RuleHeadroom           // freshness-gated latest sample of a live headroom gauge
)

// String returns the rule-kind keyword.
func (k RuleKind) String() string {
	switch k {
	case RuleThreshold:
		return "threshold"
	case RuleRate:
		return "rate"
	case RuleAbsence:
		return "absence"
	case RuleBurn:
		return "burn"
	case RuleHeadroom:
		return "headroom"
	default:
		return fmt.Sprintf("RuleKind(%d)", uint8(k))
	}
}

// Op is a rule's comparison operator.
type Op uint8

// Comparison operators.
const (
	OpInvalid Op = iota
	OpGT
	OpGE
	OpLT
	OpLE
)

// String returns the operator token.
func (o Op) String() string {
	switch o {
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

func parseOp(tok string) (Op, bool) {
	switch tok {
	case ">":
		return OpGT, true
	case ">=":
		return OpGE, true
	case "<":
		return OpLT, true
	case "<=":
		return OpLE, true
	}
	return OpInvalid, false
}

// compare applies the operator.
//
//safexplain:hotpath
//safexplain:wcet
func (o Op) compare(v, bound float64) bool {
	switch o {
	case OpGT:
		return v > bound
	case OpGE:
		return v >= bound
	case OpLT:
		return v < bound
	case OpLE:
		return v <= bound
	}
	return false
}

// Rule is one declarative alert rule. Only the fields of its kind are
// meaningful (see the grammar above).
type Rule struct {
	Kind   RuleKind
	Metric string
	Op     Op      // threshold, rate, burn
	Value  float64 // threshold, rate, burn: the bound
	Window int     // rate, burn: derivation window in ticks
	For    int     // hysteresis ticks (absence: the staleness bound)
	Bound  int     // burn: index into the histogram's declared bounds
	SLO    float64 // burn: SLO target in (0,1)
	// A headroom rule reuses Window as its freshness bound: the gauge must
	// have changed within the last Window ticks or the rule clears.
}

// maxRuleInt bounds windows and hysteresis counts — far above any
// realistic cadence, low enough that a corrupt rule cannot demand an
// unbounded ring.
const maxRuleInt = 1 << 16

// validMetricName accepts the registry's metric-name alphabet
// ([a-zA-Z_:][a-zA-Z0-9_:]*) without regexp, keeping the parser pure
// and allocation-light.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseRuleInt(tok string) (int, error) {
	n, err := strconv.Atoi(tok)
	if err != nil {
		return 0, err
	}
	if n < 1 || n > maxRuleInt {
		return 0, fmt.Errorf("value %d outside [1,%d]", n, maxRuleInt)
	}
	return n, nil
}

func parseRuleFloat(tok string) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("value %q is not finite", tok)
	}
	return v, nil
}

// parseFor consumes an optional trailing "for <n>" clause.
func parseFor(fields []string) (int, error) {
	switch len(fields) {
	case 0:
		return 1, nil
	case 2:
		if fields[0] != "for" {
			return 0, fmt.Errorf("expected %q, got %q", "for", fields[0])
		}
		return parseRuleInt(fields[1])
	default:
		return 0, fmt.Errorf("trailing tokens %v", fields)
	}
}

// ParseRule parses one rule line. It is pure: any input yields a rule or
// an error, never a panic.
func ParseRule(line string) (Rule, error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	f := strings.Fields(line)
	if len(f) == 0 {
		return Rule{}, fmt.Errorf("watch: empty rule")
	}
	fail := func(format string, args ...any) (Rule, error) {
		return Rule{}, fmt.Errorf("watch: rule %q: %s", strings.Join(f, " "), fmt.Sprintf(format, args...))
	}
	if len(f) < 2 || !validMetricName(f[1]) {
		return fail("expected a metric name after %q", f[0])
	}
	r := Rule{Metric: f[1], For: 1}
	var err error
	switch f[0] {
	case "threshold":
		// threshold <metric> <op> <value> [for <n>]
		r.Kind = RuleThreshold
		if len(f) < 4 {
			return fail("expected <op> <value>")
		}
		op, ok := parseOp(f[2])
		if !ok {
			return fail("unknown operator %q", f[2])
		}
		r.Op = op
		if r.Value, err = parseRuleFloat(f[3]); err != nil {
			return fail("bad bound: %v", err)
		}
		if r.For, err = parseFor(f[4:]); err != nil {
			return fail("bad for clause: %v", err)
		}
	case "rate":
		// rate <metric> window <w> <op> <value> [for <n>]
		r.Kind = RuleRate
		if len(f) < 6 || f[2] != "window" {
			return fail("expected window <w> <op> <value>")
		}
		if r.Window, err = parseRuleInt(f[3]); err != nil {
			return fail("bad window: %v", err)
		}
		op, ok := parseOp(f[4])
		if !ok {
			return fail("unknown operator %q", f[4])
		}
		r.Op = op
		if r.Value, err = parseRuleFloat(f[5]); err != nil {
			return fail("bad bound: %v", err)
		}
		if r.For, err = parseFor(f[6:]); err != nil {
			return fail("bad for clause: %v", err)
		}
	case "absence":
		// absence <metric> for <n>
		r.Kind = RuleAbsence
		if len(f) != 4 || f[2] != "for" {
			return fail("expected for <n>")
		}
		if r.For, err = parseRuleInt(f[3]); err != nil {
			return fail("bad for clause: %v", err)
		}
	case "burn":
		// burn <hist> bound <i> slo <q> window <w> > <value> [for <n>]
		r.Kind = RuleBurn
		if len(f) < 10 || f[2] != "bound" || f[4] != "slo" || f[6] != "window" {
			return fail("expected bound <i> slo <q> window <w> <op> <value>")
		}
		bound, err := strconv.Atoi(f[3])
		if err != nil || bound < 0 || bound > 63 {
			return fail("bad bound index %q (0..63)", f[3])
		}
		r.Bound = bound
		if r.SLO, err = parseRuleFloat(f[5]); err != nil || r.SLO <= 0 || r.SLO >= 1 {
			return fail("bad slo %q (need 0 < slo < 1)", f[5])
		}
		if r.Window, err = parseRuleInt(f[7]); err != nil {
			return fail("bad window: %v", err)
		}
		op, ok := parseOp(f[8])
		if !ok {
			return fail("unknown operator %q", f[8])
		}
		r.Op = op
		if r.Value, err = parseRuleFloat(f[9]); err != nil {
			return fail("bad bound: %v", err)
		}
		if r.For, err = parseFor(f[10:]); err != nil {
			return fail("bad for clause: %v", err)
		}
	case "headroom":
		// headroom <metric> <op> <value> fresh <w> [for <n>]
		r.Kind = RuleHeadroom
		if len(f) < 6 || f[4] != "fresh" {
			return fail("expected <op> <value> fresh <w>")
		}
		op, ok := parseOp(f[2])
		if !ok {
			return fail("unknown operator %q", f[2])
		}
		r.Op = op
		if r.Value, err = parseRuleFloat(f[3]); err != nil {
			return fail("bad bound: %v", err)
		}
		if r.Window, err = parseRuleInt(f[5]); err != nil {
			return fail("bad fresh clause: %v", err)
		}
		if r.For, err = parseFor(f[6:]); err != nil {
			return fail("bad for clause: %v", err)
		}
	default:
		return fail("unknown rule kind %q", f[0])
	}
	return r, nil
}

// String renders the rule in canonical grammar form: parsing the result
// yields an identical rule (the round-trip FuzzWatchRuleDecode checks).
func (r Rule) String() string {
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var b strings.Builder
	switch r.Kind {
	case RuleThreshold:
		fmt.Fprintf(&b, "threshold %s %s %s", r.Metric, r.Op, num(r.Value))
	case RuleRate:
		fmt.Fprintf(&b, "rate %s window %d %s %s", r.Metric, r.Window, r.Op, num(r.Value))
	case RuleAbsence:
		fmt.Fprintf(&b, "absence %s for %d", r.Metric, r.For)
		return b.String() // For is the clause itself, not hysteresis
	case RuleBurn:
		fmt.Fprintf(&b, "burn %s bound %d slo %s window %d %s %s",
			r.Metric, r.Bound, num(r.SLO), r.Window, r.Op, num(r.Value))
	case RuleHeadroom:
		fmt.Fprintf(&b, "headroom %s %s %s fresh %d", r.Metric, r.Op, num(r.Value), r.Window)
	default:
		fmt.Fprintf(&b, "invalid %s", r.Metric)
	}
	if r.For > 1 {
		fmt.Fprintf(&b, " for %d", r.For)
	}
	return b.String()
}

// ParseRules parses a rule file: one rule per line, '#' comments and
// blank lines skipped. Pure and never panicking, like ParseRule.
func ParseRules(src string) ([]Rule, error) {
	var rules []Rule
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// EncodeRules renders rules in canonical form, one per line.
func EncodeRules(rules []Rule) string {
	var b strings.Builder
	for _, r := range rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
