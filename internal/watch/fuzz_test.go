package watch

import "testing"

// FuzzWatchRuleDecode drives the rule parser with arbitrary lines: it
// must never panic, and anything it accepts must re-encode to a
// canonical form that parses back to the identical rule (a fixed point
// after one canonicalization).
func FuzzWatchRuleDecode(f *testing.F) {
	f.Add("threshold queue_depth > 5 for 2")
	f.Add("rate frames_total window 4 < 3.5")
	f.Add("absence heartbeat_total for 7")
	f.Add("burn rt_frame_cycles bound 4 slo 0.99 window 8 > 1")
	f.Add("threshold m <= -0 for 65536")
	f.Add("burn h bound 0 slo 0.5 window 2 >= 2 for 5 # comment")
	f.Add("")
	f.Add("# comment only")
	f.Add("threshold m > 1e308")
	f.Add("rate ::__:: window 1 > 0")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseRule(line)
		if err != nil {
			return
		}
		canon := r.String()
		back, err := ParseRule(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not parse: %v", canon, line, err)
		}
		if back != r {
			t.Fatalf("canonical round trip changed the rule: %+v vs %+v (line %q)", back, r, line)
		}
		if again := back.String(); again != canon {
			t.Fatalf("canonical form is not a fixed point: %q vs %q", again, canon)
		}
	})
}
