package watch

import (
	"strings"
	"testing"

	"safexplain/internal/obs"
)

func mustRules(t *testing.T, src string) []Rule {
	t.Helper()
	rules, err := ParseRules(src)
	if err != nil {
		t.Fatalf("ParseRules(%q): %v", src, err)
	}
	return rules
}

func TestWatcherThresholdHysteresis(t *testing.T) {
	snap := testSnap()
	w, err := New(Config{
		Origin: "n0",
		Rules:  mustRules(t, "threshold queue_depth > 5 for 2\n"),
	}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obsv := func(tick int64, v float64) int {
		snap.Gauges[0].Value = v
		fired, err := w.Observe(tick, []obs.Snapshot{snap})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		return fired
	}

	if f := obsv(1, 10); f != 0 {
		t.Fatal("fired on the first breach tick despite for 2")
	}
	if f := obsv(2, 10); f != 1 {
		t.Fatal("did not fire after two consecutive breach ticks")
	}
	if f := obsv(3, 10); f != 0 {
		t.Fatal("re-fired while already firing")
	}
	if w.Firing() != 1 {
		t.Fatalf("Firing = %d, want 1", w.Firing())
	}
	if f := obsv(4, 1); f != 0 {
		t.Fatal("counted a resolve as a firing transition")
	}
	if w.Firing() != 0 {
		t.Fatalf("Firing after resolve = %d, want 0", w.Firing())
	}

	alerts := w.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("ledger holds %d alerts, want 2 (firing + resolved)", len(alerts))
	}
	if alerts[0].State != StateFiring || alerts[0].Tick != 2 || alerts[0].Value != 10 {
		t.Errorf("firing alert = %+v", alerts[0])
	}
	if alerts[1].State != StateResolved || alerts[1].Tick != 4 {
		t.Errorf("resolved alert = %+v", alerts[1])
	}

	// A breach interrupted before the hysteresis count never fires.
	if f := obsv(5, 10); f != 0 {
		t.Fatal("fired on a single breach tick")
	}
	if f := obsv(6, 1); f != 0 {
		t.Fatal("fired after the breach streak broke")
	}
	if f := obsv(7, 10); f != 0 {
		t.Fatal("streak did not reset after a clean tick")
	}
}

func TestWatcherAlertEvidence(t *testing.T) {
	snap := testSnap()
	journal := obs.NewFlight(16)
	w, err := New(Config{
		Origin:  "n3",
		Rules:   mustRules(t, "threshold queue_depth > 5\n"),
		Journal: journal,
	}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap.Gauges[0].Value = 9
	if _, err := w.Observe(42, []obs.Snapshot{snap}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	alerts := w.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("want one alert, got %d", len(alerts))
	}
	a := alerts[0]
	if a.Origin != "n3" || a.Rule != "threshold queue_depth > 5" || a.Tick != 42 {
		t.Errorf("alert = %+v", a)
	}

	// Encode → decode round-trips and the evidence hash authenticates.
	blob, err := EncodeAlert(a)
	if err != nil {
		t.Fatalf("EncodeAlert: %v", err)
	}
	back, err := DecodeAlert(blob)
	if err != nil {
		t.Fatalf("DecodeAlert: %v", err)
	}
	if back != a {
		t.Errorf("round-trip changed the alert: %+v vs %+v", back, a)
	}

	// Any tampering breaks the hash.
	tampered := strings.Replace(string(blob), `"tick":42`, `"tick":43`, 1)
	if _, err := DecodeAlert([]byte(tampered)); err == nil {
		t.Fatal("DecodeAlert accepted a tampered alert")
	}
	if _, err := DecodeAlert([]byte("{")); err == nil {
		t.Fatal("DecodeAlert accepted truncated JSON")
	}

	// The transition landed in the flight journal as a watch span.
	spans := journal.Spans()
	found := false
	for _, s := range spans {
		if s.Stage == obs.StageWatch && s.Frame == 42 && s.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no StageWatch span in the journal: %+v", spans)
	}
}

func TestWatcherBurnRule(t *testing.T) {
	// A BudgetBounds histogram with budget 100: bound index
	// obs.BudgetBoundIndex is exactly the budget.
	reg := obs.NewRegistry("rt")
	hist := reg.Histogram("rt_frame_cycles", "cycles", obs.BudgetBounds(100)...)
	snaps := func() []obs.Snapshot { return []obs.Snapshot{reg.Snapshot()} }

	w, err := New(Config{
		Origin: "n0",
		Rules:  mustRules(t, "burn rt_frame_cycles bound 4 slo 0.9 window 2 > 1 for 2\n"),
	}, snaps())
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	tick := int64(0)
	step := func(values ...float64) int {
		tick++
		for _, v := range values {
			hist.Observe(v)
		}
		fired, err := w.Observe(tick, snaps())
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		return fired
	}

	// Clean frames: everything under budget, burn 0 — no alert through
	// warmup and beyond.
	for i := 0; i < 5; i++ {
		if f := step(50, 80, 90); f != 0 {
			t.Fatalf("burn rule fired on clean frames at tick %d", tick)
		}
	}
	// Latency creep past the budget: 2 of 4 observations per tick land
	// above 100 → burn (0.5)/(0.1) = 5 > 1, firing after 2 ticks.
	if f := step(50, 90, 120, 130); f != 0 {
		t.Fatal("burn rule fired before its hysteresis count")
	}
	if f := step(50, 90, 120, 130); f != 1 {
		t.Fatal("burn rule did not fire on sustained over-budget frames")
	}
	// Back under budget: the rule resolves once the window clears.
	resolved := false
	for i := 0; i < 4; i++ {
		step(50, 60)
		if w.Firing() == 0 {
			resolved = true
			break
		}
	}
	if !resolved {
		t.Fatal("burn rule never resolved after load returned under budget")
	}
}

func TestWatcherWarmupStaysSilent(t *testing.T) {
	snap := testSnap()
	w, err := New(Config{
		Origin: "n0",
		// Deliberately breach-shaped from tick one: rate < 100 is true as
		// soon as it is computable.
		Rules: mustRules(t, "rate frames_total window 3 < 100\n"),
	}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for tick := int64(1); tick <= 3; tick++ {
		fired, err := w.Observe(tick, []obs.Snapshot{snap})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if fired != 0 {
			t.Fatalf("rule fired during warmup at tick %d", tick)
		}
	}
	fired, err := w.Observe(4, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if fired != 1 {
		t.Fatal("rule did not fire on the first tick with a full window")
	}
}

func TestWatcherMaxAlerts(t *testing.T) {
	snap := testSnap()
	w, err := New(Config{
		Origin:    "n0",
		MaxAlerts: 2,
		Rules:     mustRules(t, "threshold queue_depth > 5\n"),
	}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Flap the gauge across the threshold: each crossing is a transition.
	tick := int64(0)
	for i := 0; i < 4; i++ {
		for _, v := range []float64{10, 0} {
			tick++
			snap.Gauges[0].Value = v
			if _, err := w.Observe(tick, []obs.Snapshot{snap}); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
	}
	if got := len(w.Alerts()); got != 2 {
		t.Fatalf("ledger holds %d alerts, want the MaxAlerts bound 2", got)
	}
	h := w.Health()
	if h.AlertsDropped == 0 {
		t.Fatal("overflowed transitions were not counted as dropped")
	}
	if h.AlertsTotal != 4 {
		t.Fatalf("AlertsTotal = %d, want 4 firings", h.AlertsTotal)
	}
}

func TestWatcherHealth(t *testing.T) {
	snap := testSnap()
	w, err := New(Config{
		Origin: "n7",
		Rules:  mustRules(t, "threshold queue_depth > 5\n"),
	}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := w.Health()
	if h.Origin != "n7" || h.Status != "ok" || h.Rules != 1 || h.Series != 8 {
		t.Errorf("initial Health = %+v", h)
	}
	snap.Gauges[0].Value = 10
	if _, err := w.Observe(5, []obs.Snapshot{snap}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	h = w.Health()
	if h.Status != "alerting" || h.Firing != 1 || h.Tick != 5 || h.Samples != 1 {
		t.Errorf("alerting Health = %+v", h)
	}
}

func TestWatcherBindErrors(t *testing.T) {
	snap := testSnap()
	snaps := []obs.Snapshot{snap}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"unknown metric", Config{Rules: mustRules(t, "threshold ghost > 1\n")}},
		{"burn on non-histogram", Config{Rules: mustRules(t, "burn frames_total bound 0 slo 0.9 window 2 > 1\n")}},
		{"burn bound out of range", Config{Rules: mustRules(t, "burn frame_cycles bound 9 slo 0.9 window 2 > 1\n")}},
		{"window too wide", Config{Depth: 4, Rules: mustRules(t, "rate frames_total window 4 > 1\n")}},
		{"absence beyond ring", Config{Depth: 4, Rules: mustRules(t, "absence frames_total for 4\n")}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg, snaps); err == nil {
			t.Errorf("%s: New accepted the rule", tc.name)
		}
	}
}

func TestWatcherObserveDrift(t *testing.T) {
	snap := testSnap()
	w, err := New(Config{}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	drifted := testSnap()
	drifted.Gauges[0].Name = "queue_depth_renamed"
	if _, err := w.Observe(1, []obs.Snapshot{drifted}); err == nil {
		t.Fatal("Observe accepted a drifted snapshot")
	}
}

// TestObserveZeroAlloc proves the steady-state sample path — Fill,
// Sample, and full rule evaluation without a transition — allocates
// nothing, the probe-effect contract the tentpole claims.
func TestObserveZeroAlloc(t *testing.T) {
	snap := testSnap()
	snap.Histograms[0].Buckets = []uint64{1, 0, 0, 0}
	snap.Histograms[0].Count = 1
	w, err := New(Config{
		Origin: "n0",
		Rules: mustRules(t, `
threshold queue_depth > 1e9
rate frames_total window 2 > 1e9
absence frames_total for 1000
burn frame_cycles bound 1 slo 0.9 window 2 > 1e9
`),
		Depth: 2048,
	}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snaps := []obs.Snapshot{snap}
	tick := int64(0)
	allocs := testing.AllocsPerRun(500, func() {
		tick++
		// Mutate the sampled values in place: the counter and histogram
		// keep moving, so absence never trips and nothing transitions.
		snaps[0].Counters[0].Value++
		snaps[0].Histograms[0].Buckets[0]++
		snaps[0].Histograms[0].Count++
		snaps[0].Histograms[0].Sum += 0.5
		if _, err := w.Observe(tick, snaps); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %v allocs/op in steady state, want 0", allocs)
	}
}

// BenchmarkWatchObserve times the steady-state sample path (Fill +
// Sample + rule evaluation, no transitions) and reports its allocation
// count — run with -benchmem to see the 0 allocs/op contract held.
func BenchmarkWatchObserve(b *testing.B) {
	snap := testSnap()
	snap.Histograms[0].Buckets = []uint64{1, 0, 0, 0}
	snap.Histograms[0].Count = 1
	rules, err := ParseRules(`
threshold queue_depth > 1e9
rate frames_total window 2 > 1e9
absence frames_total for 2000
burn frame_cycles bound 1 slo 0.9 window 2 > 1e9
`)
	if err != nil {
		b.Fatal(err)
	}
	w, err := New(Config{Origin: "n0", Rules: rules, Depth: 2048}, []obs.Snapshot{snap})
	if err != nil {
		b.Fatal(err)
	}
	snaps := []obs.Snapshot{snap}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snaps[0].Counters[0].Value++
		snaps[0].Histograms[0].Buckets[0]++
		snaps[0].Histograms[0].Count++
		snaps[0].Histograms[0].Sum += 0.5
		if _, err := w.Observe(int64(i+1), snaps); err != nil {
			b.Fatal(err)
		}
	}
}
