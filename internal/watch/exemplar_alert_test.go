package watch

import (
	"testing"

	"safexplain/internal/obs"
)

// TestBurnAlertCarriesExemplarTraceID checks the exemplar linkage end
// to end at the watcher level: a burn-rate breach names the TraceID of
// the worst observation its histogram retained, the evidence hash
// covers that id, and exemplar-free rules keep an empty TraceID.
func TestBurnAlertCarriesExemplarTraceID(t *testing.T) {
	reg := obs.NewRegistry("rt")
	hist := reg.Histogram("rt_frame_cycles", "cycles", obs.BudgetBounds(100)...)
	snaps := func() []obs.Snapshot { return []obs.Snapshot{reg.Snapshot()} }

	w, err := New(Config{
		Origin: "n0",
		Rules:  mustRules(t, "burn rt_frame_cycles bound 4 slo 0.9 window 2 > 1 for 2\n"),
	}, snaps())
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	worst := obs.TraceID(7, 42)
	tick := int64(0)
	step := func(obsFn func()) {
		tick++
		obsFn()
		if _, err := w.Observe(tick, snaps()); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}

	// Warmup under budget; each observation is traced but in-budget.
	for i := 0; i < 4; i++ {
		step(func() {
			hist.ObserveExemplar(50, obs.TraceID(7, int32(i)))
			hist.ObserveExemplar(80, obs.TraceID(7, int32(i)))
		})
	}
	// Budget blown: the 130-cycle observation from frame 42 is the worst
	// of its scrape interval and must surface as the alert's exemplar.
	for i := 0; i < 2; i++ {
		step(func() {
			hist.ObserveExemplar(50, obs.TraceID(7, 50))
			hist.ObserveExemplar(120, obs.TraceID(7, 51))
			hist.ObserveExemplar(130, worst)
			hist.ObserveExemplar(125, obs.TraceID(7, 52))
		})
	}

	alerts := w.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 firing", len(alerts))
	}
	a := alerts[0]
	if a.State != StateFiring {
		t.Fatalf("alert state = %q, want firing", a.State)
	}
	if a.TraceID != obs.FormatTraceID(worst) {
		t.Fatalf("alert TraceID = %q, want %s (the worst-case exemplar)",
			a.TraceID, obs.FormatTraceID(worst))
	}

	// The evidence hash covers the TraceID: the relay round trip
	// verifies, and a tampered id is rejected.
	blob, err := EncodeAlert(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAlert(blob)
	if err != nil {
		t.Fatalf("relay round trip: %v", err)
	}
	if got.TraceID != a.TraceID {
		t.Fatal("TraceID lost in the relay round trip")
	}
	forged := a
	forged.TraceID = obs.FormatTraceID(obs.TraceID(7, 1))
	fb, _ := EncodeAlert(forged)
	if _, err := DecodeAlert(fb); err == nil {
		t.Fatal("evidence hash accepted a tampered TraceID")
	}
}

// TestScalarAlertHasNoTraceID checks non-burn rules never pick up an
// exemplar — TraceID linkage is a burn-rule property.
func TestScalarAlertHasNoTraceID(t *testing.T) {
	reg := obs.NewRegistry("rt")
	g := reg.Gauge("rt_health", "health")
	hist := reg.Histogram("rt_frame_cycles", "cycles", obs.BudgetBounds(100)...)
	snaps := func() []obs.Snapshot { return []obs.Snapshot{reg.Snapshot()} }

	w, err := New(Config{
		Origin: "n0",
		Rules:  mustRules(t, "threshold rt_health < 1 for 1\n"),
	}, snaps())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g.Set(0)
	hist.ObserveExemplar(500, obs.TraceID(9, 9)) // exemplar present, rule scalar
	if _, err := w.Observe(1, snaps()); err != nil {
		t.Fatal(err)
	}
	alerts := w.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].TraceID != "" {
		t.Fatalf("scalar alert TraceID = %q, want empty", alerts[0].TraceID)
	}
}
