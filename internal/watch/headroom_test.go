package watch

import (
	"testing"

	"safexplain/internal/obs"
)

func TestParseHeadroomRule(t *testing.T) {
	r, err := ParseRule("headroom prof_min_headroom_ratio < 0.2 fresh 4 for 2")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Kind != RuleHeadroom || r.Metric != "prof_min_headroom_ratio" ||
		r.Op != OpLT || r.Value != 0.2 || r.Window != 4 || r.For != 2 {
		t.Fatalf("parsed rule = %+v", r)
	}
	canon := r.String()
	if canon != "headroom prof_min_headroom_ratio < 0.2 fresh 4 for 2" {
		t.Fatalf("canonical form = %q", canon)
	}
	r2, err := ParseRule(canon)
	if err != nil {
		t.Fatalf("re-parse canonical: %v", err)
	}
	if r2 != r {
		t.Fatalf("round trip drifted: %+v vs %+v", r2, r)
	}

	for _, bad := range []string{
		"headroom m < 0.2",            // missing fresh clause
		"headroom m < 0.2 fresh 0",    // fresh below 1
		"headroom m ! 0.2 fresh 4",    // bad operator
		"headroom m < nope fresh 4",   // bad bound
		"headroom m < 0.2 fresh 4 x",  // trailing garbage
		"headroom 9bad < 0.2 fresh 4", // bad metric name
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}
}

// TestWatcherHeadroomFreshnessGate drives the headroom rule through its
// three regimes: fresh breach fires, a stalled gauge (unchanged for the
// fresh window) clears the alert instead of sustaining it on stale
// margin, and a fresh breach after the stall re-fires.
func TestWatcherHeadroomFreshnessGate(t *testing.T) {
	snap := testSnap()
	w, err := New(Config{
		Origin: "n0",
		Rules:  mustRules(t, "headroom queue_depth < 5 fresh 3\n"),
	}, []obs.Snapshot{snap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obsv := func(tick int64, v float64) int {
		snap.Gauges[0].Value = v
		fired, err := w.Observe(tick, []obs.Snapshot{snap})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		return fired
	}

	// Tick 1: staleness needs two samples — warmup, silent.
	if f := obsv(1, 1); f != 0 {
		t.Fatal("fired before the staleness baseline existed")
	}
	// Tick 2: value moved and breaches the bound — fires.
	if f := obsv(2, 0.9); f != 1 {
		t.Fatal("fresh breach did not fire")
	}
	// Ticks 3-4: unchanged but still inside the fresh window — holds.
	obsv(3, 0.9)
	obsv(4, 0.9)
	if w.Firing() != 1 {
		t.Fatalf("Firing = %d during fresh breach, want 1", w.Firing())
	}
	// Tick 5: three consecutive unchanged ticks — stale, clears.
	obsv(5, 0.9)
	if w.Firing() != 0 {
		t.Fatalf("Firing = %d with a stalled gauge, want 0 (freshness gate)", w.Firing())
	}
	// Tick 6: the gauge moves again below the bound — re-fires.
	if f := obsv(6, 0.8); f != 1 {
		t.Fatal("fresh breach after a stall did not re-fire")
	}
	// Tick 7: moves above the bound — resolves on margin recovery.
	obsv(7, 6)
	if w.Firing() != 0 {
		t.Fatalf("Firing = %d after margin recovered, want 0", w.Firing())
	}

	alerts := w.Alerts()
	if len(alerts) != 4 {
		t.Fatalf("ledger holds %d alerts, want 4 (fire, clear, fire, resolve)", len(alerts))
	}
	if alerts[1].State != StateResolved || alerts[1].Tick != 5 {
		t.Errorf("stale clear alert = %+v", alerts[1])
	}
}
