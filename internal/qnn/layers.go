package qnn

import (
	"fmt"
	"math"

	"safexplain/internal/fixed"
	"safexplain/internal/nn"
	"safexplain/internal/tensor"
)

// Quantized kernels. Arithmetic contract shared by qConv and qDense:
//
//	real_out ≈ outScale * (q_out - outZp)
//	acc      = Σ (q_in - inZp) * q_w + q_bias      (int32)
//	q_out    = clamp( requant(acc) + outZp )        (int8)
//
// with q_bias = round(bias / (inScale*wScale)) and requant the integer
// multiplier for inScale*wScale/outScale from internal/fixed. Weights are
// per-tensor symmetric (zero-point 0), the usual scheme that keeps the
// inner loop free of zero-point cross terms on the weight side.

// quantizeWeights chooses symmetric params for w and returns the int8
// weights.
func quantizeWeights(w *tensor.Tensor) ([]int8, fixed.QuantParams, error) {
	var maxAbs float32
	for _, v := range w.Data() {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	p, err := fixed.ChooseSymmetricParams(maxAbs)
	if err != nil {
		return nil, fixed.QuantParams{}, err
	}
	q := make([]int8, w.Len())
	p.QuantizeSlice(q, w.Data())
	return q, p, nil
}

// quantizeBias converts a float bias vector to int32 at scale
// inScale*wScale.
func quantizeBias(b *tensor.Tensor, inScale, wScale float32) []int32 {
	q := make([]int32, b.Len())
	for i, v := range b.Data() {
		q[i] = quantizeBiasScalar(v, inScale, wScale)
	}
	return q
}

// quantizeBiasScalar converts one bias value to int32 at scale
// inScale*wScale.
func quantizeBiasScalar(v, inScale, wScale float32) int32 {
	return int32(math.Round(float64(v) / (float64(inScale) * float64(wScale))))
}

func requantizer(inScale, wScale, outScale float32) (fixed.Multiplier, error) {
	real := float64(inScale) * float64(wScale) / float64(outScale)
	m, err := fixed.NewMultiplier(real)
	if err != nil {
		return fixed.Multiplier{}, fmt.Errorf("qnn: requantization factor %v out of range: %w", real, err)
	}
	return m, nil
}

// qConv is the integer Conv2D kernel. Weights are quantized per output
// channel (each filter gets its own symmetric scale and requantization
// multiplier): after BatchNorm folding, filter magnitudes can differ by
// orders of magnitude across channels, and a single per-tensor scale would
// crush the small ones to zero.
type qConv struct {
	inC, inH, inW       int
	outC, outH, outW    int
	kh, kw, stride, pad int
	w                   []int8
	bias                []int32
	inP, outP           fixed.QuantParams
	m                   []fixed.Multiplier // per output channel
}

func newQConv(l *nn.Conv2D, inShape []int, inP, outP fixed.QuantParams) (*qConv, error) {
	perCh := l.InC * l.KH * l.KW
	wq := make([]int8, l.W.Value.Len())
	bias := make([]int32, l.OutC)
	ms := make([]fixed.Multiplier, l.OutC)
	wd := l.W.Value.Data()
	for o := 0; o < l.OutC; o++ {
		var maxAbs float32
		row := wd[o*perCh : (o+1)*perCh]
		for _, v := range row {
			a := v
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		wp, err := fixed.ChooseSymmetricParams(maxAbs)
		if err != nil {
			return nil, err
		}
		wp.QuantizeSlice(wq[o*perCh:(o+1)*perCh], row)
		bias[o] = quantizeBiasScalar(l.B.Value.Data()[o], inP.Scale, wp.Scale)
		ms[o], err = requantizer(inP.Scale, wp.Scale, outP.Scale)
		if err != nil {
			return nil, err
		}
	}
	oh, ow := tensor.Conv2DShape(inShape[1], inShape[2], l.KH, l.KW, l.Stride, l.Pad)
	return &qConv{
		inC: l.InC, inH: inShape[1], inW: inShape[2],
		outC: l.OutC, outH: oh, outW: ow,
		kh: l.KH, kw: l.KW, stride: l.Stride, pad: l.Pad,
		w: wq, bias: bias,
		inP: inP, outP: outP, m: ms,
	}, nil
}

func (q *qConv) name() string              { return "qConv2D" }
func (q *qConv) outLen() int               { return q.outC * q.outH * q.outW }
func (q *qConv) params() fixed.QuantParams { return q.outP }

func (q *qConv) forward(in, out []int8) {
	inZp := q.inP.ZeroPoint
	outZp := q.outP.ZeroPoint
	di := 0
	for o := 0; o < q.outC; o++ {
		for oy := 0; oy < q.outH; oy++ {
			for ox := 0; ox < q.outW; ox++ {
				acc := q.bias[o]
				for ic := 0; ic < q.inC; ic++ {
					for ky := 0; ky < q.kh; ky++ {
						iy := oy*q.stride + ky - q.pad
						if iy < 0 || iy >= q.inH {
							continue
						}
						rowIn := (ic*q.inH + iy) * q.inW
						rowW := ((o*q.inC+ic)*q.kh + ky) * q.kw
						for kx := 0; kx < q.kw; kx++ {
							ix := ox*q.stride + kx - q.pad
							if ix < 0 || ix >= q.inW {
								continue
							}
							acc += (int32(in[rowIn+ix]) - inZp) * int32(q.w[rowW+kx])
						}
					}
				}
				out[di] = fixed.ClampInt8(q.m[o].Apply(acc) + outZp)
				di++
			}
		}
	}
}

// qDense is the integer fully-connected kernel.
type qDense struct {
	in, out   int
	w         []int8
	bias      []int32
	inP, outP fixed.QuantParams
	m         fixed.Multiplier
}

func newQDense(l *nn.Dense, inP, outP fixed.QuantParams) (*qDense, error) {
	wq, wp, err := quantizeWeights(l.W.Value)
	if err != nil {
		return nil, err
	}
	m, err := requantizer(inP.Scale, wp.Scale, outP.Scale)
	if err != nil {
		return nil, err
	}
	return &qDense{
		in: l.In, out: l.Out,
		w:    wq,
		bias: quantizeBias(l.B.Value, inP.Scale, wp.Scale),
		inP:  inP, outP: outP, m: m,
	}, nil
}

func (q *qDense) name() string              { return "qDense" }
func (q *qDense) outLen() int               { return q.out }
func (q *qDense) params() fixed.QuantParams { return q.outP }

func (q *qDense) forward(in, out []int8) {
	inZp := q.inP.ZeroPoint
	outZp := q.outP.ZeroPoint
	for o := 0; o < q.out; o++ {
		acc := q.bias[o]
		row := q.w[o*q.in : (o+1)*q.in]
		for i := 0; i < q.in; i++ {
			acc += (int32(in[i]) - inZp) * int32(row[i])
		}
		out[o] = fixed.ClampInt8(q.m.Apply(acc) + outZp)
	}
}

// qReLU clamps activations at the zero-point: in the affine scheme,
// real 0 corresponds to code ZeroPoint, so max(real, 0) is max(q, zp).
type qReLU struct {
	n int
	p fixed.QuantParams
}

func (q *qReLU) name() string              { return "qReLU" }
func (q *qReLU) outLen() int               { return q.n }
func (q *qReLU) params() fixed.QuantParams { return q.p }

func (q *qReLU) forward(in, out []int8) {
	zp := int8(q.p.ZeroPoint)
	for i := 0; i < q.n; i++ {
		v := in[i]
		if v < zp {
			v = zp
		}
		out[i] = v
	}
}

// qMaxPool is max pooling in the quantized domain — valid because
// quantization is monotone.
type qMaxPool struct {
	c, h, w        int
	window, stride int
	oh, ow         int
	p              fixed.QuantParams
}

func newQMaxPool(l *nn.MaxPool2D, inShape []int, p fixed.QuantParams) *qMaxPool {
	oh := (inShape[1]-l.Window)/l.Stride + 1
	ow := (inShape[2]-l.Window)/l.Stride + 1
	return &qMaxPool{
		c: inShape[0], h: inShape[1], w: inShape[2],
		window: l.Window, stride: l.Stride, oh: oh, ow: ow, p: p,
	}
}

func (q *qMaxPool) name() string              { return "qMaxPool2D" }
func (q *qMaxPool) outLen() int               { return q.c * q.oh * q.ow }
func (q *qMaxPool) params() fixed.QuantParams { return q.p }

func (q *qMaxPool) forward(in, out []int8) {
	di := 0
	for c := 0; c < q.c; c++ {
		for oy := 0; oy < q.oh; oy++ {
			for ox := 0; ox < q.ow; ox++ {
				best := int8(math.MinInt8)
				for ky := 0; ky < q.window; ky++ {
					row := (c*q.h + oy*q.stride + ky) * q.w
					for kx := 0; kx < q.window; kx++ {
						v := in[row+ox*q.stride+kx]
						if v > best {
							best = v
						}
					}
				}
				out[di] = best
				di++
			}
		}
	}
}

// qAvgPool is average pooling in the quantized domain: the integer mean of
// codes equals the code of the real mean (up to rounding), so input
// parameters are reused.
type qAvgPool struct {
	c, h, w        int
	window, stride int
	oh, ow         int
	p              fixed.QuantParams
}

func newQAvgPool(l *nn.AvgPool2D, inShape []int, p fixed.QuantParams) *qAvgPool {
	oh := (inShape[1]-l.Window)/l.Stride + 1
	ow := (inShape[2]-l.Window)/l.Stride + 1
	return &qAvgPool{
		c: inShape[0], h: inShape[1], w: inShape[2],
		window: l.Window, stride: l.Stride, oh: oh, ow: ow, p: p,
	}
}

func (q *qAvgPool) name() string              { return "qAvgPool2D" }
func (q *qAvgPool) outLen() int               { return q.c * q.oh * q.ow }
func (q *qAvgPool) params() fixed.QuantParams { return q.p }

func (q *qAvgPool) forward(in, out []int8) {
	n := int32(q.window * q.window)
	di := 0
	for c := 0; c < q.c; c++ {
		for oy := 0; oy < q.oh; oy++ {
			for ox := 0; ox < q.ow; ox++ {
				var acc int32
				for ky := 0; ky < q.window; ky++ {
					row := (c*q.h + oy*q.stride + ky) * q.w
					for kx := 0; kx < q.window; kx++ {
						acc += int32(in[row+ox*q.stride+kx])
					}
				}
				// Round half away from zero on the integer mean.
				if acc >= 0 {
					acc = (acc + n/2) / n
				} else {
					acc = (acc - n/2) / n
				}
				out[di] = fixed.ClampInt8(acc)
				di++
			}
		}
	}
}

// qFlatten is a copy in the quantized domain (shapes are implicit).
type qFlatten struct {
	n int
	p fixed.QuantParams
}

func (q *qFlatten) name() string              { return "qFlatten" }
func (q *qFlatten) outLen() int               { return q.n }
func (q *qFlatten) params() fixed.QuantParams { return q.p }

func (q *qFlatten) forward(in, out []int8) {
	copy(out[:q.n], in[:q.n])
}
