// Package qnn is the FUSA-grade inference engine: a post-training int8
// quantization of an nn.Network that runs with integer-only arithmetic in
// statically allocated memory.
//
// This is the reproduction of the paper's third pillar, "DL library
// implementations that adhere to safety requirements". The properties a
// certification argument needs, and how the engine provides them:
//
//   - No dynamic memory in the inference path: every buffer is sized and
//     allocated when the engine is built (shapes are static), so Infer
//     performs zero heap allocations — asserted by tests with
//     testing.AllocsPerRun and measurable in the T5 benchmark.
//   - Bit-exact determinism across platforms: all inference arithmetic is
//     integer (int8 data, int32 accumulators, gemmlowp-style requantization
//     from internal/fixed), so there is no dependence on floating-point
//     contraction, rounding mode, or library versions.
//   - Bounded, checkable error versus the float reference: quantization is
//     calibrated on representative data and layer-wise conformance against
//     internal/tensor reference kernels is part of the test suite.
//
// The engine supports the layer set used by the case-study classifiers:
// Conv2D, ReLU, MaxPool2D, Flatten, Dense. Sigmoid/Tanh are rejected at
// build time — in a safety context an unsupported construct must fail
// loudly during development, never degrade silently at runtime.
package qnn

import (
	"errors"
	"fmt"
	"math"

	"safexplain/internal/fixed"
	"safexplain/internal/nn"
	"safexplain/internal/prof"
	"safexplain/internal/tensor"
)

// ErrUnsupportedLayer is returned when the float network contains a layer
// the quantized engine has no kernel for.
var ErrUnsupportedLayer = errors.New("qnn: unsupported layer type")

// ErrNoCalibration is returned when Quantize is given no calibration data.
var ErrNoCalibration = errors.New("qnn: calibration set is empty")

// qlayer is one quantized stage. Forward reads in and writes out; both are
// engine-owned buffers.
type qlayer interface {
	name() string
	outLen() int
	params() fixed.QuantParams // output quantization parameters
	forward(in, out []int8)
}

// Engine is an immutable quantized model plus its preallocated working
// memory. Like nn.Network it is not safe for concurrent use — replicate
// per goroutine (construction is cheap relative to calibration).
type Engine struct {
	ID     string
	layers []qlayer

	inParams fixed.QuantParams
	inLen    int

	// Ping-pong activation buffers sized to the largest layer I/O, plus
	// the dequantized logit buffer. Allocated once at build time.
	bufA, bufB []int8
	logits     []float32

	// arena selects static buffers (the FUSA mode). When false the engine
	// allocates fresh buffers per inference — the ablation baseline for
	// experiment T5, demonstrating what the static-memory discipline buys.
	arena bool

	// Per-kernel profiling, armed by SetProfiler: every layer forward in
	// Infer is bracketed by an injected-clock read and attributed to its
	// site. A nil profiler costs one comparison per inference.
	prof      *prof.Profiler
	profSites []prof.SiteID
}

// Option configures engine construction.
type Option func(*Engine)

// WithoutArena switches the engine to per-inference heap allocation. Only
// used by the T5 ablation; production configurations keep the default.
func WithoutArena() Option {
	return func(e *Engine) { e.arena = false }
}

// Quantize builds an Engine from a trained float network. calib must be a
// representative sample of in-distribution inputs; activation ranges are
// taken from it (min/max calibration).
func Quantize(net *nn.Network, calib []*tensor.Tensor, opts ...Option) (*Engine, error) {
	if len(calib) == 0 {
		return nil, ErrNoCalibration
	}
	// Observe the dynamic range of the input and of every layer output.
	nLayers := len(net.Layers)
	lo := make([]float32, nLayers+1)
	hi := make([]float32, nLayers+1)
	for i := range lo {
		lo[i] = float32(math.Inf(1))
		hi[i] = float32(math.Inf(-1))
	}
	for _, x := range calib {
		net.Forward(x)
		for i := -1; i < nLayers; i++ {
			act := net.Activation(i)
			for _, v := range act.Data() {
				if v < lo[i+1] {
					lo[i+1] = v
				}
				if v > hi[i+1] {
					hi[i+1] = v
				}
			}
		}
	}

	e := &Engine{ID: net.ID + "/int8", arena: true}
	inP, err := fixed.ChooseParams(lo[0], hi[0])
	if err != nil {
		return nil, fmt.Errorf("qnn: input range: %w", err)
	}
	e.inParams = inP
	e.inLen = calib[0].Len()

	cur := inP // quantization params of the running activation
	shape := append([]int(nil), calib[0].Shape()...)
	maxLen := e.inLen
	for i, l := range net.Layers {
		outShape := l.OutShape(shape)
		var ql qlayer
		switch v := l.(type) {
		case *nn.Conv2D:
			outP, err := fixed.ChooseParams(lo[i+1], hi[i+1])
			if err != nil {
				return nil, fmt.Errorf("qnn: layer %d range: %w", i, err)
			}
			ql, err = newQConv(v, shape, cur, outP)
			if err != nil {
				return nil, fmt.Errorf("qnn: layer %d (%s, out range [%g, %g]): %w",
					i, l.Name(), lo[i+1], hi[i+1], err)
			}
			cur = outP
		case *nn.Dense:
			outP, err := fixed.ChooseParams(lo[i+1], hi[i+1])
			if err != nil {
				return nil, fmt.Errorf("qnn: layer %d range: %w", i, err)
			}
			ql, err = newQDense(v, cur, outP)
			if err != nil {
				return nil, fmt.Errorf("qnn: layer %d (%s, out range [%g, %g]): %w",
					i, l.Name(), lo[i+1], hi[i+1], err)
			}
			cur = outP
		case *nn.ReLU:
			ql = &qReLU{n: prod(outShape), p: cur}
		case *nn.MaxPool2D:
			ql = newQMaxPool(v, shape, cur)
		case *nn.AvgPool2D:
			ql = newQAvgPool(v, shape, cur)
		case *nn.Flatten:
			ql = &qFlatten{n: prod(outShape), p: cur}
		default:
			return nil, fmt.Errorf("%w: %s", ErrUnsupportedLayer, l.Name())
		}
		e.layers = append(e.layers, ql)
		if n := ql.outLen(); n > maxLen {
			maxLen = n
		}
		shape = outShape
	}

	for _, o := range opts {
		o(e)
	}
	e.bufA = make([]int8, maxLen)
	e.bufB = make([]int8, maxLen)
	e.logits = make([]float32, e.layers[len(e.layers)-1].outLen())
	return e, nil
}

func prod(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Infer quantizes x, runs the integer network, and returns the predicted
// class and the dequantized logits. In arena mode the returned slice
// aliases engine-owned memory, valid until the next Infer call.
func (e *Engine) Infer(x *tensor.Tensor) (class int, logits []float32) {
	if x.Len() != e.inLen {
		panic(fmt.Sprintf("qnn: input length %d, engine expects %d", x.Len(), e.inLen))
	}
	in, out, logits := e.bufA, e.bufB, e.logits
	if !e.arena {
		in = make([]int8, len(e.bufA))
		out = make([]int8, len(e.bufB))
		logits = make([]float32, len(e.logits))
	}
	for i, v := range x.Data() {
		in[i] = e.inParams.Quantize(v)
	}
	n := e.inLen
	if e.prof != nil {
		//safexplain:bounded layer list frozen at build time
		for i, l := range e.layers {
			pb := e.prof.Begin()
			l.forward(in[:n], out[:l.outLen()])
			e.prof.End(e.profSites[i], pb)
			in, out = out, in
			n = l.outLen()
		}
	} else {
		for _, l := range e.layers {
			l.forward(in[:n], out[:l.outLen()])
			in, out = out, in
			n = l.outLen()
		}
	}
	last := e.layers[len(e.layers)-1]
	p := last.params()
	best, bestV := 0, float32(math.Inf(-1))
	for i := 0; i < n; i++ {
		v := p.Dequantize(in[i])
		logits[i] = v
		if v > bestV {
			bestV = v
			best = i
		}
	}
	return best, logits[:n]
}

// InferDetection runs a quantized *detector* (output layout
// [nClasses logits | cx | cy], see nn.TrainDetector): the class is the
// argmax over the logit slice only, and the trailing pair is returned as
// the dequantized centroid. Allocation behaviour matches Infer.
func (e *Engine) InferDetection(x *tensor.Tensor, nClasses int) (class int, cx, cy float32) {
	_, logits := e.Infer(x)
	if len(logits) != nClasses+2 {
		panic(fmt.Sprintf("qnn: detector output length %d, want %d", len(logits), nClasses+2))
	}
	best, bv := 0, logits[0]
	for i := 1; i < nClasses; i++ {
		if logits[i] > bv {
			bv = logits[i]
			best = i
		}
	}
	return best, logits[nClasses], logits[nClasses+1]
}

// NumLayers returns the quantized layer count.
func (e *Engine) NumLayers() int { return len(e.layers) }

// KernelNames returns one stable name per quantized layer
// ("qconv2d#0", "qdense#4", …) — the identities a profiler site table
// keys per-kernel cycle attribution on.
func (e *Engine) KernelNames() []string {
	out := make([]string, len(e.layers))
	for i, l := range e.layers {
		out[i] = fmt.Sprintf("%s#%d", l.name(), i)
	}
	return out
}

// SetProfiler arms per-kernel profiling: sites must hold one SiteID per
// quantized layer, in layer order (as produced over KernelNames). A nil
// profiler disarms. The record path inside Infer stays zero-allocation —
// asserted by the engine's alloc tests with profiling armed.
func (e *Engine) SetProfiler(p *prof.Profiler, sites []prof.SiteID) error {
	if p == nil {
		e.prof, e.profSites = nil, nil
		return nil
	}
	if len(sites) != len(e.layers) {
		return fmt.Errorf("qnn: %d profile sites for %d layers", len(sites), len(e.layers))
	}
	e.prof = p
	e.profSites = append([]prof.SiteID(nil), sites...)
	return nil
}

// InputParams returns the input quantization parameters.
func (e *Engine) InputParams() fixed.QuantParams { return e.inParams }

// LayerOutputs runs inference and returns each layer's dequantized output,
// for layer-wise conformance checks against the float reference. This path
// allocates and is test-only.
func (e *Engine) LayerOutputs(x *tensor.Tensor) [][]float32 {
	in := make([]int8, len(e.bufA))
	out := make([]int8, len(e.bufB))
	for i, v := range x.Data() {
		in[i] = e.inParams.Quantize(v)
	}
	n := e.inLen
	var result [][]float32
	for _, l := range e.layers {
		l.forward(in[:n], out[:l.outLen()])
		in, out = out, in
		n = l.outLen()
		p := l.params()
		deq := make([]float32, n)
		for i := 0; i < n; i++ {
			deq[i] = p.Dequantize(in[i])
		}
		result = append(result, deq)
	}
	return result
}
