package qnn

import "safexplain/internal/platform"

// Workload derivation: the engine's layer geometry is static, so its
// memory-access trace is a compile-time artefact — exactly what timing
// analysis wants. Workload() walks the same loops the integer kernels
// execute and emits one access per operand read/write, giving
// internal/platform and internal/mbpta the *deployed* program to bound
// instead of a hand-written approximation. This closes the P3→P4 loop:
// the binary being certified is the binary being timed.

// Engine memory map for the trace: int8 activations ping-pong between two
// fixed buffers; each layer's weights/bias live in their own region.
const (
	wlBufA    uint64 = 0x0100_0000
	wlBufB    uint64 = 0x0200_0000
	wlWeights uint64 = 0x1000_0000
	wlRegion  uint64 = 0x0010_0000 // per-layer weight region stride
)

// engineWorkload is the static trace of one Engine inference.
type engineWorkload struct {
	name  string
	trace []uint64
	hot   []uint64
}

// Name implements platform.Workload.
func (w *engineWorkload) Name() string { return w.name }

// Trace implements platform.Workload.
func (w *engineWorkload) Trace() []uint64 { return w.trace }

// Instructions implements platform.Workload: one arithmetic op per access,
// the same convention as the hand-written workloads.
func (w *engineWorkload) Instructions() uint64 { return uint64(len(w.trace)) }

// HotSet implements platform.Workload: the weight regions (the classic
// lock target).
func (w *engineWorkload) HotSet() []uint64 { return w.hot }

// Workload returns the engine's inference as a platform workload.
func (e *Engine) Workload() platform.Workload {
	w := &engineWorkload{name: e.ID + "/trace"}
	in, out := wlBufA, wlBufB
	inLen := e.inLen
	for li, l := range e.layers {
		wbase := wlWeights + uint64(li)*wlRegion
		switch q := l.(type) {
		case *qConv:
			for o := 0; o < q.outC; o++ {
				// Per-output-channel bias read (int32).
				bAddr := wbase + uint64(q.outC*q.inC*q.kh*q.kw) + uint64(o)*4
				for oy := 0; oy < q.outH; oy++ {
					for ox := 0; ox < q.outW; ox++ {
						w.trace = append(w.trace, bAddr)
						for ic := 0; ic < q.inC; ic++ {
							for ky := 0; ky < q.kh; ky++ {
								iy := oy*q.stride + ky - q.pad
								if iy < 0 || iy >= q.inH {
									continue
								}
								for kx := 0; kx < q.kw; kx++ {
									ix := ox*q.stride + kx - q.pad
									if ix < 0 || ix >= q.inW {
										continue
									}
									w.trace = append(w.trace,
										in+uint64((ic*q.inH+iy)*q.inW+ix),
										wbase+uint64(((o*q.inC+ic)*q.kh+ky)*q.kw+kx))
								}
							}
						}
						w.trace = append(w.trace, out+uint64((o*q.outH+oy)*q.outW+ox))
					}
				}
			}
			w.hot = appendRange(w.hot, wbase, q.outC*q.inC*q.kh*q.kw)
		case *qDense:
			for o := 0; o < q.out; o++ {
				w.trace = append(w.trace, wbase+uint64(q.in*q.out)+uint64(o)*4)
				for i := 0; i < q.in; i++ {
					w.trace = append(w.trace,
						in+uint64(i),
						wbase+uint64(o*q.in+i))
				}
				w.trace = append(w.trace, out+uint64(o))
			}
			w.hot = appendRange(w.hot, wbase, q.in*q.out)
		case *qMaxPool:
			di := 0
			for c := 0; c < q.c; c++ {
				for oy := 0; oy < q.oh; oy++ {
					for ox := 0; ox < q.ow; ox++ {
						for ky := 0; ky < q.window; ky++ {
							row := (c*q.h + oy*q.stride + ky) * q.w
							for kx := 0; kx < q.window; kx++ {
								w.trace = append(w.trace, in+uint64(row+ox*q.stride+kx))
							}
						}
						w.trace = append(w.trace, out+uint64(di))
						di++
					}
				}
			}
		case *qAvgPool:
			di := 0
			for c := 0; c < q.c; c++ {
				for oy := 0; oy < q.oh; oy++ {
					for ox := 0; ox < q.ow; ox++ {
						for ky := 0; ky < q.window; ky++ {
							row := (c*q.h + oy*q.stride + ky) * q.w
							for kx := 0; kx < q.window; kx++ {
								w.trace = append(w.trace, in+uint64(row+ox*q.stride+kx))
							}
						}
						w.trace = append(w.trace, out+uint64(di))
						di++
					}
				}
			}
		default: // qReLU, qFlatten: elementwise copy/clamp
			for i := 0; i < l.outLen(); i++ {
				w.trace = append(w.trace, in+uint64(i), out+uint64(i))
			}
		}
		in, out = out, in
		inLen = l.outLen()
	}
	_ = inLen
	return w
}

// appendRange appends n consecutive byte addresses from base.
func appendRange(dst []uint64, base uint64, n int) []uint64 {
	for i := 0; i < n; i++ {
		dst = append(dst, base+uint64(i))
	}
	return dst
}
