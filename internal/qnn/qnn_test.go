package qnn

import (
	"errors"
	"testing"
	"testing/quick"

	"safexplain/internal/data"
	"safexplain/internal/mbpta"
	"safexplain/internal/nn"
	"safexplain/internal/platform"
	"safexplain/internal/prng"
	"safexplain/internal/tensor"
)

// trainedModel returns a small trained CNN on the automotive case study
// plus its train/test sets. Shared across tests via sync-free lazy init in
// TestMain-less style: each caller trains its own tiny model quickly.
func trainedModel(t testing.TB, seed uint64) (*nn.Network, *data.Set, *data.Set) {
	t.Helper()
	set := data.Automotive(data.Config{N: 240, Seed: seed, Noise: 0.05})
	train, test := set.Split(0.8, seed+1)
	src := prng.New(seed + 2)
	net := nn.NewNetwork("auto-cnn",
		nn.NewConv2D(1, 6, 3, 1, 1, src),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(6*8*8, 32, src),
		nn.NewReLU(),
		nn.NewDense(32, set.NumClasses(), src),
	)
	_, _, err := nn.TrainClassifier(net, train, nn.TrainConfig{
		Epochs: 8, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: seed + 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, train, test
}

func calibInputs(s *data.Set, n int) []*tensor.Tensor {
	var xs []*tensor.Tensor
	for i := 0; i < n && i < s.Len(); i++ {
		x, _ := s.Sample(i)
		xs = append(xs, x)
	}
	return xs
}

func TestQuantizeErrors(t *testing.T) {
	net, _, _ := trainedModel(t, 1)
	if _, err := Quantize(net, nil); !errors.Is(err, ErrNoCalibration) {
		t.Fatalf("expected ErrNoCalibration, got %v", err)
	}
	bad := nn.NewNetwork("bad", nn.NewDense(4, 4, prng.New(1)), nn.NewSigmoid())
	x := tensor.New(4)
	if _, err := Quantize(bad, []*tensor.Tensor{x}); !errors.Is(err, ErrUnsupportedLayer) {
		t.Fatalf("expected ErrUnsupportedLayer, got %v", err)
	}
}

func TestQuantizedAccuracyClose(t *testing.T) {
	net, train, test := trainedModel(t, 10)
	eng, err := Quantize(net, calibInputs(train, 60))
	if err != nil {
		t.Fatal(err)
	}
	floatAcc := nn.Evaluate(net, test)
	correct := 0
	for i := 0; i < test.Len(); i++ {
		x, label := test.Sample(i)
		class, _ := eng.Infer(x)
		if class == label {
			correct++
		}
	}
	qAcc := float64(correct) / float64(test.Len())
	if floatAcc-qAcc > 0.08 {
		t.Fatalf("quantization cost too high: float %.3f vs int8 %.3f", floatAcc, qAcc)
	}
}

func TestAgreementWithFloat(t *testing.T) {
	net, train, test := trainedModel(t, 20)
	eng, err := Quantize(net, calibInputs(train, 60))
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < test.Len(); i++ {
		x, _ := test.Sample(i)
		fc, _ := net.Predict(x)
		qc, _ := eng.Infer(x)
		if fc == qc {
			agree++
		}
	}
	if frac := float64(agree) / float64(test.Len()); frac < 0.9 {
		t.Fatalf("int8 agrees with float on only %.0f%% of samples", 100*frac)
	}
}

func TestLayerwiseConformance(t *testing.T) {
	net, train, _ := trainedModel(t, 30)
	eng, err := Quantize(net, calibInputs(train, 60))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := train.Sample(0)
	qOuts := eng.LayerOutputs(x)
	net.Forward(x)
	if len(qOuts) != len(net.Layers) {
		t.Fatalf("layer count mismatch: %d vs %d", len(qOuts), len(net.Layers))
	}
	for i := range net.Layers {
		ref := net.Activation(i)
		// Bound: a handful of quantization steps accumulated through depth.
		// The per-layer scale is the right yardstick.
		p := eng.layers[i].params()
		tol := float64(p.Scale) * 8
		var worst float64
		for j, v := range qOuts[i] {
			d := float64(v) - float64(ref.Data()[j])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst > tol {
			t.Fatalf("layer %d (%s): max abs err %v exceeds tolerance %v",
				i, eng.layers[i].name(), worst, tol)
		}
	}
}

func TestInferBitExactAcrossRuns(t *testing.T) {
	net, train, test := trainedModel(t, 40)
	eng, err := Quantize(net, calibInputs(train, 40))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := test.Sample(0)
	class1, logits1 := eng.Infer(x)
	ref := append([]float32(nil), logits1...)
	for i := 0; i < 100; i++ {
		class, logits := eng.Infer(x)
		if class != class1 {
			t.Fatal("class changed between identical runs")
		}
		for j := range logits {
			if logits[j] != ref[j] {
				t.Fatal("logits changed between identical runs")
			}
		}
	}
}

func TestTwoEnginesFromSameNetworkAgree(t *testing.T) {
	net, train, test := trainedModel(t, 50)
	calib := calibInputs(train, 40)
	e1, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && i < test.Len(); i++ {
		x, _ := test.Sample(i)
		c1, l1 := e1.Infer(x)
		c2, l2 := e2.Infer(x)
		if c1 != c2 {
			t.Fatal("independently built engines disagree on class")
		}
		for j := range l1 {
			if l1[j] != l2[j] {
				t.Fatal("independently built engines disagree on logits")
			}
		}
	}
}

func TestInferZeroAllocations(t *testing.T) {
	// The headline static-memory property: the arena path performs no heap
	// allocation per inference.
	net, train, test := trainedModel(t, 60)
	eng, err := Quantize(net, calibInputs(train, 40))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := test.Sample(0)
	allocs := testing.AllocsPerRun(50, func() {
		eng.Infer(x)
	})
	if allocs != 0 {
		t.Fatalf("arena inference allocates %v objects/run, want 0", allocs)
	}
}

func TestWithoutArenaAllocates(t *testing.T) {
	net, train, test := trainedModel(t, 70)
	eng, err := Quantize(net, calibInputs(train, 40), WithoutArena())
	if err != nil {
		t.Fatal(err)
	}
	x, _ := test.Sample(0)
	allocs := testing.AllocsPerRun(20, func() {
		eng.Infer(x)
	})
	if allocs == 0 {
		t.Fatal("heap mode reports zero allocations; the T5 ablation would be vacuous")
	}
	// Results must be identical to the arena path regardless.
	eng2, err := Quantize(net, calibInputs(train, 40))
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := eng.Infer(x)
	c2, _ := eng2.Infer(x)
	if c1 != c2 {
		t.Fatal("arena and heap modes disagree")
	}
}

func TestInferPanicsOnWrongInputLength(t *testing.T) {
	net, train, _ := trainedModel(t, 80)
	eng, err := Quantize(net, calibInputs(train, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input size")
		}
	}()
	eng.Infer(tensor.New(5))
}

func TestNumLayersAndParams(t *testing.T) {
	net, train, _ := trainedModel(t, 90)
	eng, err := Quantize(net, calibInputs(train, 20))
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumLayers() != len(net.Layers) {
		t.Fatalf("NumLayers = %d, want %d", eng.NumLayers(), len(net.Layers))
	}
	if eng.InputParams().Scale <= 0 {
		t.Fatal("input scale must be positive")
	}
}

func BenchmarkInferArena(b *testing.B) {
	net, train, test := trainedModel(b, 100)
	eng, err := Quantize(net, calibInputs(train, 40))
	if err != nil {
		b.Fatal(err)
	}
	x, _ := test.Sample(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Infer(x)
	}
}

func BenchmarkInferHeap(b *testing.B) {
	net, train, test := trainedModel(b, 100)
	eng, err := Quantize(net, calibInputs(train, 40), WithoutArena())
	if err != nil {
		b.Fatal(err)
	}
	x, _ := test.Sample(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Infer(x)
	}
}

func BenchmarkInferFloatReference(b *testing.B) {
	net, _, test := trainedModel(b, 100)
	x, _ := test.Sample(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(x)
	}
}

func TestQuantizeAvgPoolModel(t *testing.T) {
	set := data.Automotive(data.Config{N: 200, Seed: 900, Noise: 0.05})
	train, test := set.Split(0.8, 901)
	src := prng.New(902)
	net := nn.NewNetwork("avg-cnn",
		nn.NewConv2D(1, 4, 3, 1, 1, src),
		nn.NewReLU(),
		nn.NewAvgPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(4*8*8, set.NumClasses(), src),
	)
	if _, _, err := nn.TrainClassifier(net, train, nn.TrainConfig{
		Epochs: 6, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 903,
	}); err != nil {
		t.Fatal(err)
	}
	eng, err := Quantize(net, calibInputs(train, 40))
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < test.Len(); i++ {
		x, _ := test.Sample(i)
		fc, _ := net.Predict(x)
		qc, _ := eng.Infer(x)
		if fc == qc {
			agree++
		}
	}
	if frac := float64(agree) / float64(test.Len()); frac < 0.9 {
		t.Fatalf("avgpool int8 agreement %.2f", frac)
	}
	x, _ := test.Sample(0)
	if allocs := testing.AllocsPerRun(20, func() { eng.Infer(x) }); allocs != 0 {
		t.Fatalf("avgpool arena inference allocates %v/run", allocs)
	}
}

func TestEngineWorkload(t *testing.T) {
	net, train, _ := trainedModel(t, 110)
	eng, err := Quantize(net, calibInputs(train, 40))
	if err != nil {
		t.Fatal(err)
	}
	w := eng.Workload()
	// Deterministic and non-trivial.
	a, b := w.Trace(), w.Trace()
	if len(a) < 10000 {
		t.Fatalf("trace suspiciously short: %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("engine trace not deterministic")
		}
	}
	if w.Instructions() != uint64(len(a)) {
		t.Fatal("instruction count convention broken")
	}
	if len(w.HotSet()) == 0 {
		t.Fatal("no hot set (weights) declared")
	}
	// The trace must be timeable end-to-end: platform campaign + MBPTA.
	var cfg platform.Config
	for _, c := range platform.StandardConfigs() {
		if c.Name == "time-randomized" {
			cfg = c
		}
	}
	samples := platform.Campaign(cfg, w, 300, 111)
	an, err := mbpta.FitChecked(samples, 20, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if an.PWCET(1e-9) <= an.MaxObs {
		t.Fatalf("pWCET %v not above max observed %v", an.PWCET(1e-9), an.MaxObs)
	}
	// Static bound must dominate measurements on the engine trace too.
	bound := platform.StaticBound(cfg, w)
	for _, v := range samples[:20] {
		if uint64(v) > bound {
			t.Fatalf("measured %v above static bound %d", v, bound)
		}
	}
}

func TestQuantizePropertyRandomDenseNets(t *testing.T) {
	// Property: for random small dense nets and in-range inputs, the
	// quantized engine agrees with the float argmax on a large majority
	// of inputs and never crashes or produces out-of-range classes.
	check := func(seed uint64) bool {
		src := prng.New(seed)
		const in, hidden, classes = 12, 8, 4
		net := nn.NewNetwork("prop",
			nn.NewDense(in, hidden, src), nn.NewReLU(), nn.NewDense(hidden, classes, src))
		var calib []*tensor.Tensor
		r := prng.NewStream(seed, 99)
		for i := 0; i < 30; i++ {
			x := tensor.New(in)
			for j := range x.Data() {
				x.Data()[j] = r.Float32()
			}
			calib = append(calib, x)
		}
		eng, err := Quantize(net, calib)
		if err != nil {
			return false
		}
		agree := 0
		for i := 0; i < 30; i++ {
			fc, _ := net.Predict(calib[i])
			qc, logits := eng.Infer(calib[i])
			if qc < 0 || qc >= classes || len(logits) != classes {
				return false
			}
			if qc == fc {
				agree++
			}
		}
		return agree >= 24 // >= 80% agreement on calibration-domain inputs
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInferDetectionQuantized(t *testing.T) {
	// Train a small detector, quantize it, and check the int8 engine's
	// detection output against the float reference: same classes on a
	// large majority of frames, centroids within a quantization-step
	// tolerance.
	set := data.AutomotiveDetect(data.Config{N: 400, Seed: 950, Noise: 0.08})
	train, test := set.Split(0.8, 951)
	nClasses := len(set.Classes)
	src := prng.New(952)
	net := nn.NewNetwork("qdet",
		nn.NewConv2D(1, 6, 3, 1, 1, src), nn.NewReLU(), nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(), nn.NewDense(6*8*8, 32, src), nn.NewReLU(),
		nn.NewDense(32, nClasses+2, src))
	if _, err := nn.TrainDetector(net, train, nClasses, nn.DetectConfig{
		TrainConfig: nn.TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.05,
			Momentum: 0.9, ClipNorm: 5, Seed: 953},
	}); err != nil {
		t.Fatal(err)
	}
	var calib []*tensor.Tensor
	for i := 0; i < 60 && i < train.Len(); i++ {
		x, _, _, _ := train.DetAt(i)
		calib = append(calib, x)
	}
	eng, err := Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	var worstLoc float64
	for i := 0; i < test.Len(); i++ {
		x, _, _, _ := test.DetAt(i)
		fd := nn.Detect(net, x, nClasses)
		qc, qx, qy := eng.InferDetection(x, nClasses)
		if qc == fd.Class {
			agree++
		}
		dx := float64(qx - fd.CX)
		dy := float64(qy - fd.CY)
		if d := dx*dx + dy*dy; d > worstLoc {
			worstLoc = d
		}
	}
	if frac := float64(agree) / float64(test.Len()); frac < 0.9 {
		t.Fatalf("quantized detector class agreement %.2f", frac)
	}
	// Centroids are in [0,1]; a handful of int8 steps is ~0.05.
	if worstLoc > 0.05*0.05 {
		t.Fatalf("quantized centroid deviates by %v (squared)", worstLoc)
	}
	// The detection path stays allocation-free.
	x, _, _, _ := test.DetAt(0)
	if allocs := testing.AllocsPerRun(20, func() { eng.InferDetection(x, nClasses) }); allocs != 0 {
		t.Fatalf("quantized detection allocates %v/run", allocs)
	}
}

func TestInferDetectionPanicsOnWrongLayout(t *testing.T) {
	net, train, _ := trainedModel(t, 120) // classifier: 4 outputs, not nClasses+2
	eng, err := Quantize(net, calibInputs(train, 20))
	if err != nil {
		t.Fatal(err)
	}
	x := calibInputs(train, 1)[0]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-detector layout")
		}
	}()
	eng.InferDetection(x, 4)
}
