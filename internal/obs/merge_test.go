package obs

import (
	"errors"
	"testing"
)

// declareFleetRegistry builds one registry instance of a fixed shape —
// N identical calls model N shards/units declaring the same metric set.
func declareFleetRegistry() (*Registry, *Counter, *Gauge, *Histogram) {
	r := NewRegistry("fleet")
	c := r.Counter("frames_total", "frames")
	g := r.Gauge("inflight", "in-flight chunks")
	h := r.Histogram("frame_bytes", "frame size", 64, 128, 256)
	return r, c, g, h
}

func TestSnapshotMerge(t *testing.T) {
	r1, c1, g1, h1 := declareFleetRegistry()
	r2, c2, g2, h2 := declareFleetRegistry()
	c1.Add(10)
	c2.Add(32)
	g1.Set(2)
	g2.Set(3)
	h1.Observe(100)
	h1.Observe(300)
	h2.Observe(50)

	merged := r1.Snapshot().CloneMetrics()
	if err := merged.Merge(r2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if merged.Counters[0].Value != 42 {
		t.Errorf("merged counter = %d, want 42", merged.Counters[0].Value)
	}
	if merged.Gauges[0].Value != 5 {
		t.Errorf("merged gauge = %g, want 5 (fleet subtotal)", merged.Gauges[0].Value)
	}
	hm := merged.Histograms[0]
	if hm.Count != 3 || hm.Sum != 450 {
		t.Errorf("merged histogram count/sum = %d/%g, want 3/450", hm.Count, hm.Sum)
	}
	wantBuckets := []uint64{1, 1, 0, 1} // 50→le64, 100→le128, 300→+Inf
	for i, w := range wantBuckets {
		if hm.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hm.Buckets[i], w)
		}
	}
}

// TestSnapshotMergeOrderIndependent pins the property the fleet report
// relies on: with integer-valued observations, merging A into B and B
// into A yield identical snapshots.
func TestSnapshotMergeOrderIndependent(t *testing.T) {
	r1, c1, _, h1 := declareFleetRegistry()
	r2, c2, _, h2 := declareFleetRegistry()
	for i := 0; i < 100; i++ {
		c1.Add(uint64(i))
		h1.Observe(float64(i * 7 % 400))
		c2.Add(uint64(2 * i))
		h2.Observe(float64(i * 13 % 400))
	}
	ab := r1.Snapshot().CloneMetrics()
	if err := ab.Merge(r2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ba := r2.Snapshot().CloneMetrics()
	if err := ba.Merge(r1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ja, err := ab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := ba.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The System label legitimately differs per receiver; both are "fleet"
	// here, so the documents must be byte-identical.
	if string(ja) != string(jb) {
		t.Fatalf("merge is order-dependent:\nA+B:\n%s\nB+A:\n%s", ja, jb)
	}
}

func TestSnapshotMergeIncompatible(t *testing.T) {
	base, _, _, _ := declareFleetRegistry()

	cases := []struct {
		name  string
		build func() *Registry
	}{
		{"missing metric", func() *Registry {
			r := NewRegistry("fleet")
			r.Counter("frames_total", "frames")
			return r
		}},
		{"renamed counter", func() *Registry {
			r := NewRegistry("fleet")
			r.Counter("other_total", "frames")
			r.Gauge("inflight", "in-flight chunks")
			r.Histogram("frame_bytes", "frame size", 64, 128, 256)
			return r
		}},
		{"different bounds", func() *Registry {
			r := NewRegistry("fleet")
			r.Counter("frames_total", "frames")
			r.Gauge("inflight", "in-flight chunks")
			r.Histogram("frame_bytes", "frame size", 64, 128, 512)
			return r
		}},
		{"different bucket count", func() *Registry {
			r := NewRegistry("fleet")
			r.Counter("frames_total", "frames")
			r.Gauge("inflight", "in-flight chunks")
			r.Histogram("frame_bytes", "frame size", 64, 128)
			return r
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := base.Snapshot().CloneMetrics()
			err := dst.Merge(tc.build().Snapshot())
			if !errors.Is(err, ErrMerge) {
				t.Fatalf("err = %v, want ErrMerge", err)
			}
		})
	}
}

// TestCloneMetricsNoAliasing: mutating a merge seeded by CloneMetrics
// must not write through into the source snapshot's slices.
func TestCloneMetricsNoAliasing(t *testing.T) {
	r1, c1, _, h1 := declareFleetRegistry()
	c1.Add(5)
	h1.Observe(100)
	src := r1.Snapshot()
	dst := src.CloneMetrics()

	r2, c2, _, h2 := declareFleetRegistry()
	c2.Add(7)
	h2.Observe(100)
	if err := dst.Merge(r2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if src.Counters[0].Value != 5 {
		t.Errorf("source counter mutated to %d", src.Counters[0].Value)
	}
	if src.Histograms[0].Buckets[1] != 1 {
		t.Errorf("source histogram bucket mutated to %d", src.Histograms[0].Buckets[1])
	}
}
