package obs

import (
	"strings"
	"testing"
)

// downlinkIncident replays a synthetic FDIR incident through a real Obs
// bundle + downlink: anomalies from frame 10, quarantine at 12 with a
// golden reload, probation, return to service at 30.
func downlinkIncident(budget int) *Downlink {
	o := New(Config{Name: "bb"})
	d := NewDownlink(DownlinkConfig{BytesPerFrame: budget})
	o.AttachDownlink(d)
	health := func(f int) (from, to int32) {
		switch {
		case f < 11:
			return 0, 0
		case f == 11:
			return 0, 1 // suspect
		case f == 12:
			return 1, 2 // quarantined
		case f < 20:
			return 2, 2
		case f == 20:
			return 2, 3 // probation
		case f < 30:
			return 3, 3
		case f == 30:
			return 3, 0 // healthy again
		default:
			return 0, 0
		}
	}
	for f := 0; f < 40; f++ {
		anoms := int32(0)
		if f >= 10 && f <= 14 {
			anoms = 1
		}
		o.TraceBegin(f)
		infer := o.TraceChild(StageInfer, 3, 0, o.TraceRoot())
		sup := o.TraceChild(StageSupervisor, anoms, 0, infer)
		from, to := health(f)
		fd := o.TraceChild(StageFDIR, to, float64(from), sup)
		if f == 12 {
			o.AutoDump("fdir-quarantine", f)
			o.TraceChild(StageRecovery, 1, 0, fd)
		}
		o.TraceChild(StageVote, 0, 3, fd)
		o.TraceEnd(f)
	}
	return d
}

func TestReconstructFullBandwidth(t *testing.T) {
	d := downlinkIncident(4096)
	frames, err := DecodeStream(d.Capture())
	if err != nil {
		t.Fatal(err)
	}
	rep := Reconstruct(frames, BlackboxConfig{})
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1\n%s", len(rep.Incidents), rep.Table())
	}
	inc := rep.Incidents[0]
	if inc.SymptomFrame != 10 {
		t.Errorf("symptom frame = %d, want 10", inc.SymptomFrame)
	}
	if inc.DetectionFrame != 12 {
		t.Errorf("detection frame = %d, want 12", inc.DetectionFrame)
	}
	if inc.RecoveryFrame != 12 {
		t.Errorf("recovery frame = %d, want 12", inc.RecoveryFrame)
	}
	if inc.ReturnFrame != 30 {
		t.Errorf("return frame = %d, want 30", inc.ReturnFrame)
	}
	if inc.AnomalyFrames != 3 {
		t.Errorf("anomaly streak = %d, want 3 (frames 10..12)", inc.AnomalyFrames)
	}
	if inc.FromDumpOnly {
		t.Error("full bandwidth must reconstruct from spans, not the dump notice")
	}
	if inc.DumpHashPrefix == "" {
		t.Error("dump notice should link the flight hash prefix")
	}
	// The causal chain at the detection frame runs root → infer →
	// supervisor → fdir.
	want := []string{"frame", "infer", "supervisor", "fdir-verdict"}
	if len(inc.Chain) != len(want) {
		t.Fatalf("chain = %+v, want stages %v", inc.Chain, want)
	}
	for i, e := range inc.Chain {
		if e.Stage != want[i] {
			t.Errorf("chain[%d] = %s, want %s", i, e.Stage, want[i])
		}
	}
}

func TestReconstructDumpOnlyAtTinyBudget(t *testing.T) {
	// 32 B/frame fits the 18-byte dump record but not 34-byte spans: the
	// incident is still detected — from the dump notice alone.
	d := downlinkIncident(32)
	frames, err := DecodeStream(d.Capture())
	if err != nil {
		t.Fatal(err)
	}
	rep := Reconstruct(frames, BlackboxConfig{})
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1 (from dump notice)\n%s", len(rep.Incidents), rep.Table())
	}
	inc := rep.Incidents[0]
	if !inc.FromDumpOnly {
		t.Error("expected a dump-only reconstruction at 32 B/frame")
	}
	if inc.DetectionFrame != 12 {
		t.Errorf("detection frame = %d, want 12", inc.DetectionFrame)
	}
	if inc.SymptomFrame != -1 || inc.ReturnFrame != -1 {
		t.Errorf("symptom/return should be unknown, got %d/%d", inc.SymptomFrame, inc.ReturnFrame)
	}
}

func TestReconstructNothingAtStarvedBudget(t *testing.T) {
	// 16 B/frame fits nothing but headers: honest empty reconstruction.
	d := downlinkIncident(16)
	frames, err := DecodeStream(d.Capture())
	if err != nil {
		t.Fatal(err)
	}
	rep := Reconstruct(frames, BlackboxConfig{})
	if len(rep.Incidents) != 0 || rep.Spans != 0 {
		t.Fatalf("starved downlink still reconstructed: %s", rep.Table())
	}
}

func TestReconstructCanonicalJSONStable(t *testing.T) {
	d := downlinkIncident(4096)
	frames, _ := DecodeStream(d.Capture())
	a := Reconstruct(frames, BlackboxConfig{})
	b := Reconstruct(frames, BlackboxConfig{})
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := b.Hash()
	if ha != hb {
		t.Fatal("same capture reconstructs to different canonical hashes")
	}
	js, _ := a.CanonicalJSON()
	for _, key := range []string{"symptom_frame", "detection_frame", "recovery_frame", "return_frame", "causal_chain"} {
		if !strings.Contains(string(js), key) {
			t.Errorf("canonical JSON missing %q", key)
		}
	}
}

func TestReconstructTableRendersTimeline(t *testing.T) {
	d := downlinkIncident(4096)
	frames, _ := DecodeStream(d.Capture())
	rep := Reconstruct(frames, BlackboxConfig{})
	tab := rep.Table()
	for _, want := range []string{"incident #0", "symptom frame    10", "detection frame  12",
		"return frame     30", "causal chain"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestReconstructEmptyInput(t *testing.T) {
	rep := Reconstruct(nil, BlackboxConfig{})
	if rep.TelemetryFrames != 0 || len(rep.Incidents) != 0 {
		t.Fatal("empty input should reconstruct empty")
	}
	if rep.FirstFrame != -1 || rep.LastFrame != -1 {
		t.Fatal("frame range should be unknown on empty input")
	}
	if !strings.Contains(rep.Table(), "no FDIR incidents") {
		t.Fatal("table should state no incidents")
	}
}
