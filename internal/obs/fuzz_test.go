package obs

import (
	"testing"
)

// FuzzDownlinkDecode drives the ground-side decoder with arbitrary
// bytes: it must never panic or over-read, and whatever it does decode
// must round-trip stably (decode → re-encode via a fresh downlink →
// decode yields the same records).
func FuzzDownlinkDecode(f *testing.F) {
	// Seed with a well-formed capture containing every record kind.
	d := NewDownlink(DownlinkConfig{BytesPerFrame: 512})
	d.PushSpan(TraceSpan{Seq: 1, Frame: 2, Idx: 1, Parent: 0, Cause: -1,
		Stage: StageFDIR, Code: 2, Value: 1})
	d.PushMetric(MetricHealth, 2)
	d.PushDump(DumpRecord{Trigger: "fdir-quarantine", Frame: 2, Spans: 5,
		Hash: "deadbeefcafebabe0123456789abcdef"})
	d.EmitFrame(2)
	f.Add(d.Capture())
	f.Add([]byte{})
	f.Add([]byte{'S', 'X', wireVersion, 0, 0, 0, 0, 0xff, 0xff})
	f.Add([]byte{'S', 'X', wireVersion, 1, 0, 0, 0, 1, 0, byte(RecSpan), 0, spanPayloadLen})

	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := DecodeStream(data)
		if err != nil {
			return // corrupt input rejected: that is the contract
		}
		// Accepted input must re-encode and decode to the same records.
		for _, fr := range frames {
			rd := NewDownlink(DownlinkConfig{BytesPerFrame: 1 << 20,
				CaptureBytes: 2 << 20, QueueDepth: maxFrameCount})
			for _, r := range fr.Records {
				switch r.Kind {
				case RecSpan:
					rd.PushSpan(r.Span)
				case RecMetric:
					rd.PushMetric(r.MetricID, r.MetricValue)
				case RecDump:
					rd.PushDump(DumpRecord{Trigger: r.Dump.Trigger,
						Frame: int(r.Dump.Frame), Spans: r.Dump.Spans})
				}
			}
			rd.EmitFrame(int(fr.Frame))
			redecoded, err := DecodeStream(rd.Capture())
			if err != nil {
				t.Fatalf("re-encoded frame does not decode: %v", err)
			}
			if len(redecoded) != 1 {
				t.Fatalf("re-encoded to %d frames, want 1", len(redecoded))
			}
			if len(redecoded[0].Records) != len(fr.Records) {
				t.Fatalf("record count changed on round trip: %d -> %d",
					len(fr.Records), len(redecoded[0].Records))
			}
		}
	})
}
