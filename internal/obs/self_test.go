package obs

import (
	"encoding/json"
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestSelfStatsGauges(t *testing.T) {
	reg := NewRegistry("self")
	ss := NewSelfStats(reg)

	// Force some runtime activity so every gauge has something to show.
	runtime.GC()
	ss.Update()

	snap := reg.Snapshot()
	want := map[string]bool{
		"self_heap_bytes":            false,
		"self_gc_pause_seconds":      false,
		"self_goroutines":            false,
		"self_sched_latency_seconds": false,
	}
	for _, g := range snap.Gauges {
		if _, ok := want[g.Name]; ok {
			want[g.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("gauge %s missing from snapshot", name)
		}
	}
	get := func(name string) float64 {
		for _, g := range snap.Gauges {
			if g.Name == name {
				return g.Value
			}
		}
		t.Fatalf("gauge %s not found", name)
		return 0
	}
	if v := get("self_heap_bytes"); v <= 0 {
		t.Errorf("self_heap_bytes = %v, want > 0", v)
	}
	if v := get("self_goroutines"); v < 1 {
		t.Errorf("self_goroutines = %v, want >= 1", v)
	}
	if v := get("self_gc_pause_seconds"); v < 0 {
		t.Errorf("self_gc_pause_seconds = %v, want >= 0", v)
	}
	if v := get("self_sched_latency_seconds"); v < 0 {
		t.Errorf("self_sched_latency_seconds = %v, want >= 0", v)
	}
}

func TestSelfStatsNilSafe(t *testing.T) {
	var ss *SelfStats
	ss.Update() // must not panic
}

func TestSelfStatsUpdateDoesNotGrow(t *testing.T) {
	reg := NewRegistry("self")
	ss := NewSelfStats(reg)
	ss.Update()
	before := len(ss.samples)
	for i := 0; i < 10; i++ {
		ss.Update()
	}
	if len(ss.samples) != before {
		t.Fatalf("sample slice grew: %d -> %d", before, len(ss.samples))
	}
}

// TestSelfStatsExpositionsLint runs the promlint gate over both
// expositions of a registry carrying the self gauges: names, HELP/TYPE
// pairing and value syntax must all be clean.
func TestSelfStatsExpositionsLint(t *testing.T) {
	reg := NewRegistry("self")
	ss := NewSelfStats(reg)
	runtime.GC()
	ss.Update()
	snap := reg.Snapshot()

	prom := snap.Prometheus()
	if issues := LintExposition(prom); len(issues) != 0 {
		t.Fatalf("promlint issues in self-stats exposition:\n%s", strings.Join(issues, "\n"))
	}
	for _, name := range []string{
		"safexplain_self_heap_bytes",
		"safexplain_self_gc_pause_seconds",
		"safexplain_self_goroutines",
		"safexplain_self_sched_latency_seconds",
	} {
		if !strings.Contains(prom, name) {
			t.Errorf("prometheus exposition missing %s", name)
		}
	}

	js, err := snap.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(js, &decoded); err != nil {
		t.Fatalf("JSON exposition not valid JSON: %v", err)
	}
	if !strings.Contains(string(js), "self_goroutines") {
		t.Errorf("JSON exposition missing self_goroutines")
	}
}

func TestRuntimeHistQuantile(t *testing.T) {
	inf := math.Inf(1)

	cases := []struct {
		name string
		h    *metrics.Float64Histogram
		q    float64
		want float64
	}{
		{"nil", nil, 0.99, 0},
		{"empty", &metrics.Float64Histogram{
			Counts:  []uint64{0, 0},
			Buckets: []float64{0, 1, 2},
		}, 0.99, 0},
		{"single-bucket", &metrics.Float64Histogram{
			Counts:  []uint64{10},
			Buckets: []float64{0, 1},
		}, 0.5, 1},
		{"p99-in-last", &metrics.Float64Histogram{
			Counts:  []uint64{99, 1},
			Buckets: []float64{0, 1, 2},
		}, 0.99, 2},
		{"inf-clamped", &metrics.Float64Histogram{
			Counts:  []uint64{1, 1},
			Buckets: []float64{0, 1, inf},
		}, 0.99, 1},
		{"malformed", &metrics.Float64Histogram{
			Counts:  []uint64{1, 2, 3},
			Buckets: []float64{0, 1},
		}, 0.99, 0},
	}
	for _, tc := range cases {
		if got := runtimeHistQuantile(tc.h, tc.q); got != tc.want {
			t.Errorf("%s: runtimeHistQuantile = %v, want %v", tc.name, got, tc.want)
		}
	}
}
