package obs

import (
	"strings"
	"sync"
	"testing"
)

func mkSpan(frame int32, stage Stage, code int32, value float64) TraceSpan {
	return TraceSpan{Frame: frame, Stage: stage, Code: code, Value: value, Parent: -1, Cause: -1}
}

func TestDownlinkRoundTrip(t *testing.T) {
	d := NewDownlink(DownlinkConfig{BytesPerFrame: 512})
	d.PushSpan(mkSpan(3, StageInfer, 7, 0.5))
	d.PushMetric(MetricFrames, 42)
	d.PushDump(DumpRecord{Trigger: "fdir-quarantine", Frame: 3, Spans: 9,
		Hash: "deadbeefcafebabe0123456789abcdef"})
	if n := d.EmitFrame(3); n == 0 {
		t.Fatal("emit produced nothing")
	}

	frames, err := DecodeStream(d.Capture())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("decoded %d frames, want 1", len(frames))
	}
	f := frames[0]
	if f.Frame != 3 || len(f.Records) != 3 {
		t.Fatalf("frame=%d records=%d, want frame=3 records=3", f.Frame, len(f.Records))
	}
	// Priority order: incident dump first, then event? The infer span is
	// housekeeping, so: dump, metric+span in their channels — dump first.
	if f.Records[0].Kind != RecDump {
		t.Fatalf("first record kind = %d, want dump (incident channel drains first)", f.Records[0].Kind)
	}
	dump := f.Records[0].Dump
	if dump.Frame != 3 || dump.Trigger != "fdir-quarantine" || dump.Spans != 9 {
		t.Fatalf("dump mangled: %+v", dump)
	}
	if dump.HashPrefix != 0xdeadbeefcafebabe {
		t.Fatalf("hash prefix = %016x, want deadbeefcafebabe", dump.HashPrefix)
	}
	var gotSpan, gotMetric bool
	for _, r := range f.Records[1:] {
		switch r.Kind {
		case RecSpan:
			gotSpan = true
			if r.Span.Frame != 3 || r.Span.Stage != StageInfer || r.Span.Code != 7 || r.Span.Value != 0.5 {
				t.Fatalf("span mangled: %+v", r.Span)
			}
		case RecMetric:
			gotMetric = true
			if r.MetricID != MetricFrames || r.MetricValue != 42 {
				t.Fatalf("metric mangled: id=%d v=%g", r.MetricID, r.MetricValue)
			}
		}
	}
	if !gotSpan || !gotMetric {
		t.Fatalf("span=%v metric=%v, want both", gotSpan, gotMetric)
	}
}

func TestDownlinkPriorityOrderUnderBudget(t *testing.T) {
	// Budget fits the header plus exactly one span record: the event
	// span must win over the housekeeping span queued earlier.
	d := NewDownlink(DownlinkConfig{BytesPerFrame: frameHeaderLen + recHeaderLen + spanPayloadLen})
	d.PushSpan(mkSpan(0, StageInfer, 1, 0))    // housekeeping
	d.PushSpan(mkSpan(0, StageRecovery, 1, 0)) // event
	d.EmitFrame(0)
	frames, err := DecodeStream(d.Capture())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames[0].Records) != 1 {
		t.Fatalf("records = %d, want 1 (budget fits one span)", len(frames[0].Records))
	}
	if got := frames[0].Records[0].Span.Stage; got != StageRecovery {
		t.Fatalf("emitted %v, want the event-priority recovery span", got)
	}
	// The housekeeping span is still queued, not dropped.
	if p := d.Pending(); p[PriHousekeeping] != 1 {
		t.Fatalf("pending housekeeping = %d, want 1 (store-and-forward)", p[PriHousekeeping])
	}
	// Next frame carries it.
	d.EmitFrame(1)
	frames, err = DecodeStream(d.Capture())
	if err != nil {
		t.Fatal(err)
	}
	if got := frames[1].Records[0].Span.Stage; got != StageInfer {
		t.Fatalf("second frame carries %v, want the deferred infer span", got)
	}
}

func TestDownlinkQueueFullDropsAndCounts(t *testing.T) {
	d := NewDownlink(DownlinkConfig{QueueDepth: 4})
	for i := 0; i < 10; i++ {
		d.PushSpan(mkSpan(int32(i), StageInfer, 0, 0))
	}
	dropped, _ := d.Dropped()
	if dropped[PriHousekeeping] != 6 {
		t.Fatalf("dropped = %d, want 6", dropped[PriHousekeeping])
	}
	// Drop-newest: the oldest spans survive.
	d.EmitFrame(0)
	frames, err := DecodeStream(d.Capture())
	if err != nil {
		t.Fatal(err)
	}
	if got := frames[0].Records[0].Span.Frame; got != 0 {
		t.Fatalf("oldest surviving span frame = %d, want 0", got)
	}
}

func TestDownlinkBudgetTooSmallEmitsNothing(t *testing.T) {
	d := NewDownlink(DownlinkConfig{BytesPerFrame: frameHeaderLen + 5})
	d.PushMetric(MetricFrames, 1)
	n := d.EmitFrame(0)
	if n != frameHeaderLen {
		t.Fatalf("emitted %d bytes, want bare header %d", n, frameHeaderLen)
	}
	frames, err := DecodeStream(d.Capture())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames[0].Records) != 0 {
		t.Fatal("no record should fit a header-sized budget")
	}
}

func TestDownlinkSpanPriorityClassification(t *testing.T) {
	cases := []struct {
		span TraceSpan
		want Priority
	}{
		{mkSpan(0, StageInfer, 3, 0), PriHousekeeping},
		{mkSpan(0, StageFrame, 0, 0), PriHousekeeping},
		{mkSpan(0, StageSupervisor, 0, 0), PriHousekeeping}, // clean verdict
		{mkSpan(0, StageSupervisor, 2, 0), PriEvent},        // findings
		{mkSpan(0, StageFDIR, 1, 1), PriHousekeeping},       // steady state
		{mkSpan(0, StageFDIR, 2, 1), PriEvent},              // transition
		{mkSpan(0, StageDeadline, 0, 100), PriHousekeeping},
		{mkSpan(0, StageDeadline, 1, 100), PriEvent}, // miss
		{mkSpan(0, StageRecovery, 1, 0), PriEvent},
		{mkSpan(0, StageDrift, 1, 4.2), PriEvent},
	}
	for _, c := range cases {
		if got := spanPriority(c.span); got != c.want {
			t.Errorf("spanPriority(%v code=%d value=%g) = %v, want %v",
				c.span.Stage, c.span.Code, c.span.Value, got, c.want)
		}
	}
}

func TestDownlinkCaptureExhaustionDropsFrames(t *testing.T) {
	// Capture fits exactly one emitted frame (header 9 + metric 13); the
	// second must be dropped and counted, and the capture stays decodable.
	d := NewDownlink(DownlinkConfig{BytesPerFrame: 64, CaptureBytes: 24})
	d.PushMetric(MetricFrames, 1)
	d.EmitFrame(0)
	used := d.CaptureLen()
	d.PushMetric(MetricFrames, 2)
	if n := d.EmitFrame(1); n != 0 {
		t.Fatalf("exhausted capture still emitted %d bytes", n)
	}
	if d.CaptureLen() != used {
		t.Fatalf("capture grew past its bound: %d -> %d", used, d.CaptureLen())
	}
	if _, dropFr := d.Dropped(); dropFr != 1 {
		t.Fatalf("dropped frames = %d, want 1", dropFr)
	}
	if _, err := DecodeStream(d.Capture()); err != nil {
		t.Fatalf("capture not decodable after exhaustion: %v", err)
	}
}

func TestDownlinkEmitPathZeroAllocs(t *testing.T) {
	d := NewDownlink(DownlinkConfig{BytesPerFrame: 256, CaptureBytes: 1 << 22})
	frame := 0
	allocs := testing.AllocsPerRun(200, func() {
		d.PushSpan(mkSpan(int32(frame), StageInfer, 1, 0))
		d.PushSpan(mkSpan(int32(frame), StageFDIR, 2, 1))
		d.PushMetric(MetricHealth, 2)
		d.PushDump(DumpRecord{Trigger: "fdir-quarantine", Frame: frame,
			Hash: "deadbeefcafebabe0123456789abcdef"})
		d.EmitFrame(frame)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("downlink emit path allocates: %v allocs/op", allocs)
	}
}

func TestDecodeFrameRejectsCorruption(t *testing.T) {
	d := NewDownlink(DownlinkConfig{})
	d.PushMetric(MetricFrames, 1)
	d.EmitFrame(0)
	good := d.Capture()

	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:5],
		"bad magic":      append([]byte{'X', 'S'}, good[2:]...),
		"bad version":    append([]byte{'S', 'X', 9}, good[3:]...),
		"truncated body": good[:len(good)-3],
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	// Corrupt count: claims more records than present.
	bad := append([]byte(nil), good...)
	bad[7] = 0xff
	bad[8] = 0x0f
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Error("inflated record count accepted")
	}
}

func TestDecodeFrameSkipsUnknownKinds(t *testing.T) {
	// Hand-build a frame with one unknown-kind record followed by a
	// metric: the decoder must skip the former by length and keep the
	// latter.
	b := []byte{'S', 'X', wireVersion, 0, 0, 0, 0, 2, 0}
	b = append(b, 0x7f, 0, 2, 0xaa, 0xbb) // unknown kind, 2-byte payload
	b = append(b, byte(RecMetric), 0, metricPayload)
	payload := make([]byte, metricPayload)
	payload[0] = byte(MetricFrames)
	b = append(b, payload...)
	f, n, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d, want %d", n, len(b))
	}
	if len(f.Records) != 1 || f.Records[0].Kind != RecMetric {
		t.Fatalf("records = %+v, want the single metric", f.Records)
	}
}

func TestDownlinkConcurrentPushAndEmit(t *testing.T) {
	d := NewDownlink(DownlinkConfig{BytesPerFrame: 128, QueueDepth: 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				d.PushSpan(mkSpan(int32(i), StageInfer, int32(w), 0))
				d.PushMetric(MetricFrames, float64(i))
				if w == 0 {
					d.EmitFrame(i)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := DecodeStream(d.Capture()); err != nil {
		t.Fatalf("concurrent capture not decodable: %v", err)
	}
	if !strings.Contains(d.Describe(), "downlink: budget 128 B/frame") {
		t.Fatalf("describe = %q", d.Describe())
	}
}
