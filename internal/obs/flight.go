package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"sync"
)

// Stage identifies a span's position in the lifecycle or the per-frame
// operate path (infer → supervisor → pattern vote → fdir verdict →
// deadline check).
//
//safexplain:req REQ-DET REQ-XAI
type Stage uint8

// Span stages. StageBuild covers lifecycle verification stages; the rest
// are the per-frame runtime path.
//
//safexplain:req REQ-DET REQ-XAI
const (
	StageBuild Stage = iota
	StageInfer
	StageSupervisor
	StageVote
	StageFDIR
	StageDeadline
	StageDrift
	StageRecovery
	StageFrame // trace-context frame root span
	StageLink  // fleet tier-link lifecycle event (ground segment)
	StageWatch // continuous-health watch alert transition (internal/watch)
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageBuild:
		return "build"
	case StageInfer:
		return "infer"
	case StageSupervisor:
		return "supervisor"
	case StageVote:
		return "pattern-vote"
	case StageFDIR:
		return "fdir-verdict"
	case StageDeadline:
		return "deadline-check"
	case StageDrift:
		return "drift"
	case StageRecovery:
		return "recovery"
	case StageFrame:
		return "frame"
	case StageLink:
		return "tier-link"
	case StageWatch:
		return "watch-alert"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(s))
	}
}

// Span is one structured flight-recorder entry. All fields are fixed-size
// scalars so recording never allocates: the stage says what ran, Code
// carries the discrete outcome (delivered class, health state, miss
// count — stage-dependent), Value the continuous one (cycles, score).
//
//safexplain:req REQ-DET REQ-XAI
type Span struct {
	Seq   uint64 // global record ordinal (monotonic across wraps)
	Frame int32  // frame index (-1 for lifecycle spans)
	Stage Stage
	Code  int32
	Value float64
}

// Flight is a fixed-size ring buffer of spans — the flight recorder.
// Record overwrites the oldest span once the ring is full, so memory is
// statically bounded and the recorder always holds the most recent
// history, which is exactly what a post-incident dump needs.
//
//safexplain:req REQ-DET REQ-WCET
type Flight struct {
	mu   sync.Mutex
	ring []Span
	next uint64 // total spans ever recorded
}

// NewFlight returns a recorder holding the last capacity spans
// (minimum 8).
//
//safexplain:req REQ-DET
func NewFlight(capacity int) *Flight {
	if capacity < 8 {
		capacity = 8
	}
	return &Flight{ring: make([]Span, capacity)}
}

// Record appends one span. Zero-allocation: the span is written into a
// preallocated ring slot under a short critical section.
//
//safexplain:hotpath
//safexplain:wcet
func (f *Flight) Record(frame int, stage Stage, code int32, value float64) {
	f.mu.Lock()
	f.ring[f.next%uint64(len(f.ring))] = Span{
		Seq: f.next, Frame: int32(frame), Stage: stage, Code: code, Value: value,
	}
	f.next++
	f.mu.Unlock()
}

// Cap returns the ring capacity.
func (f *Flight) Cap() int { return len(f.ring) }

// Total returns the number of spans ever recorded (including those the
// ring has since overwritten).
func (f *Flight) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Len returns the number of spans currently held. Called from the
// auto-dump tail of the frame loop, so it stays defer-free.
//
//safexplain:hotpath
//safexplain:wcet
func (f *Flight) Len() int {
	f.mu.Lock()
	n := f.held()
	f.mu.Unlock()
	return n
}

//safexplain:hotpath
//safexplain:wcet
func (f *Flight) held() int {
	if f.next < uint64(len(f.ring)) {
		return int(f.next)
	}
	return len(f.ring)
}

// Spans returns the held spans oldest-first — the dump path. Allocates;
// never call it per frame.
func (f *Flight) Spans() []Span {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.held()
	out := make([]Span, 0, n)
	start := f.next - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, f.ring[(start+i)%uint64(len(f.ring))])
	}
	return out
}

// Hash returns the SHA-256 over the held spans in order (fixed binary
// encoding), hex-encoded. Two recorders that witnessed the same history
// hash identically, so the hash links a dump into the trace evidence
// chain: the chained record proves *which* runtime history the dump
// claims.
func (f *Flight) Hash() string {
	h := sha256.New()
	var buf [25]byte
	for _, s := range f.Spans() {
		binary.LittleEndian.PutUint64(buf[0:], s.Seq)
		binary.LittleEndian.PutUint32(buf[8:], uint32(s.Frame))
		buf[12] = byte(s.Stage)
		binary.LittleEndian.PutUint32(buf[13:], uint32(s.Code))
		binary.LittleEndian.PutUint64(buf[17:], math.Float64bits(s.Value))
		h.Write(buf[:]) //safexplain:dynamic stdlib sha256 digest write, constant-time per block
	}
	//safexplain:dynamic stdlib sha256 finalization, fixed cost
	return hex.EncodeToString(h.Sum(nil))
}

// Dump renders the held spans as a human-readable table, newest last.
func (f *Flight) Dump() string {
	spans := f.Spans()
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d/%d spans held (%d recorded), hash %.12s…\n",
		len(spans), f.Cap(), f.Total(), f.Hash())
	for _, s := range spans {
		fmt.Fprintf(&b, "  %6d frame=%-5d %-14s code=%-4d value=%g\n",
			s.Seq, s.Frame, s.Stage, s.Code, s.Value)
	}
	return b.String()
}
