package obs

import (
	"strings"
	"testing"
)

// TestExporterExpositionConformance gates the unit exporter on the
// Prometheus text-format invariants: a populated Obs bundle's
// exposition must lint clean.
func TestExporterExpositionConformance(t *testing.T) {
	o := New(Config{Name: "unit", FrameBudget: 1000})
	for f := 0; f < 20; f++ {
		o.Frames.Inc()
		o.Delivered.Inc()
		o.FrameCycles.Observe(float64(700 + 40*f))
		o.TrustScore.Observe(0.5 + float64(f)/40)
	}
	o.Fallbacks.Add(3)
	o.Health.Set(2)
	text := o.Snapshot().Prometheus()
	if issues := LintExposition(text); len(issues) != 0 {
		t.Fatalf("exporter exposition fails conformance:\n%s", strings.Join(issues, "\n"))
	}
	// An empty registry must also be clean (no families at all).
	if issues := LintExposition(NewRegistry("empty").Snapshot().Prometheus()); len(issues) != 0 {
		t.Fatalf("empty exposition fails conformance: %s", issues)
	}
}

// TestLintExpositionFindings seeds one violation per rule and asserts
// the linter flags it — the linter itself is test-oracle code and must
// not rot into accepting garbage.
func TestLintExpositionFindings(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the expected issue
	}{
		{"duplicate help",
			"# HELP m a\n# TYPE m counter\n# HELP m b\nm 1\n",
			"duplicate # HELP"},
		{"duplicate type",
			"# HELP m a\n# TYPE m counter\n# TYPE m counter\nm 1\n",
			"duplicate # TYPE"},
		{"unknown type",
			"# HELP m a\n# TYPE m widget\nm 1\n",
			"unknown type"},
		{"invalid family name",
			"# HELP 9bad a\n# TYPE 9bad counter\n",
			"invalid metric name"},
		{"invalid sample name",
			"# HELP m a\n# TYPE m counter\n0bad{x=\"1\"} 2\n",
			"invalid metric name"},
		{"sample without type",
			"m 1\n",
			"no preceding # TYPE"},
		{"sample without help",
			"# TYPE m counter\nm 1\n",
			"no preceding # HELP"},
		{"negative counter",
			"# HELP m a\n# TYPE m counter\nm -4\n",
			"negative"},
		{"bad value",
			"# HELP m a\n# TYPE m gauge\nm fast\n",
			"bad value"},
		{"non-monotone le",
			"# HELP h a\n# TYPE h histogram\n" +
				"h_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
			"le bounds not increasing"},
		{"decreasing cumulative counts",
			"# HELP h a\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 5\n",
			"counts decrease"},
		{"missing +Inf bucket",
			"# HELP h a\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\nh_sum 3\nh_count 2\n",
			"no +Inf bucket"},
		{"+Inf disagrees with count",
			"# HELP h a\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 7\n",
			"!= _count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			issues := LintExposition(tc.text)
			for _, is := range issues {
				if strings.Contains(is, tc.want) {
					return
				}
			}
			t.Fatalf("linter missed %q; issues: %v", tc.want, issues)
		})
	}
}

// TestLintExpositionClean pins a handful of legal expositions the linter
// must accept, including untyped comments, NaN/Inf values and labeled
// histogram series.
func TestLintExpositionClean(t *testing.T) {
	texts := []string{
		"",
		"# just a comment\n",
		"# HELP g a gauge\n# TYPE g gauge\ng NaN\n",
		"# HELP g a gauge\n# TYPE g gauge\ng{system=\"a\"} -Inf\ng{system=\"b\"} +Inf\n",
		"# HELP h a\n# TYPE h histogram\n" +
			"h_bucket{u=\"1\",le=\"1\"} 1\nh_bucket{u=\"1\",le=\"+Inf\"} 2\nh_sum{u=\"1\"} 3\nh_count{u=\"1\"} 2\n" +
			"h_bucket{u=\"2\",le=\"1\"} 0\nh_bucket{u=\"2\",le=\"+Inf\"} 1\nh_sum{u=\"2\"} 9\nh_count{u=\"2\"} 1\n",
	}
	for _, text := range texts {
		if issues := LintExposition(text); len(issues) != 0 {
			t.Errorf("clean exposition flagged: %v\ninput:\n%s", issues, text)
		}
	}
}
