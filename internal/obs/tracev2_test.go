package obs

import (
	"bytes"
	"sync"
	"testing"
)

// Distributed-tracing v2: deterministic TraceIDs, injected-clock span
// timing, the 55-byte wire record, and the compatibility contract that
// an unclocked tracer stays byte-exact with the v1 format.

func TestTraceIDComposition(t *testing.T) {
	id := TraceID(7, 1234)
	if TraceIDUnit(id) != 7 || TraceIDFrame(id) != 1234 {
		t.Fatalf("TraceID(7,1234) decomposed to unit %d frame %d", TraceIDUnit(id), TraceIDFrame(id))
	}
	if TraceID(0, 0) != 0 {
		t.Fatal("the zero TraceID must be reserved for untraced")
	}
	// Negative frame indexes survive the round trip through the low word.
	if TraceIDFrame(TraceID(1, -3)) != -3 {
		t.Fatalf("negative frame round trip = %d", TraceIDFrame(TraceID(1, -3)))
	}
}

func TestTraceIDFormatParseRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, TraceID(7, 1234), ^uint64(0)} {
		s := FormatTraceID(id)
		if len(s) != 16 {
			t.Fatalf("FormatTraceID(%d) = %q, want fixed 16 digits", id, s)
		}
		got, err := ParseTraceID(s)
		if err != nil || got != id {
			t.Fatalf("ParseTraceID(%q) = %d, %v; want %d", s, got, err, id)
		}
	}
	// Operator conveniences: 0x prefix, short form, surrounding space.
	if got, err := ParseTraceID(" 0x7d2 "); err != nil || got != 0x7d2 {
		t.Fatalf("ParseTraceID(0x7d2) = %d, %v", got, err)
	}
	for _, bad := range []string{"", "zz", "00000000000000001", "0x"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Fatalf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestCounterClockMonotonicAndShared(t *testing.T) {
	clock := NewCounterClock()
	if first := clock(); first != 1 {
		t.Fatalf("counter clock starts at %d, want 1", first)
	}
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				clock()
			}
		}()
	}
	wg.Wait()
	if last := clock(); last != workers*per+2 {
		t.Fatalf("counter clock = %d after %d concurrent reads, want %d", last, workers*per, workers*per+2)
	}
}

// TestSpanV2EncodeRoundTrip pins the 55-byte layout: decode(encode(s))
// is the identity, re-encoding is byte-identical, and the first 31
// bytes are exactly the v1 record — ground tooling may treat a v2
// record as v1 plus a fixed trailer.
func TestSpanV2EncodeRoundTrip(t *testing.T) {
	spans := []TraceSpan{
		{}, // zero span
		{Seq: 9, Frame: -2, Idx: 3, Parent: 0, Cause: -1, Stage: StageFDIR, Code: -7, Value: 0.25},
		{Seq: ^uint64(0), Frame: 1 << 30, Idx: 15, Parent: 0, Cause: 14, Stage: StageVote,
			Code: 1 << 30, Value: -1e300, ID: TraceID(9, 1<<30), Begin: 12345, Dur: 678},
	}
	for i, s := range spans {
		var v2 [spanV2PayloadLen]byte
		encodeTraceSpanV2(&v2, s)
		got := decodeTraceSpanV2(v2[:])
		if got != s {
			t.Fatalf("span %d: v2 round trip = %+v, want %+v", i, got, s)
		}
		var again [spanV2PayloadLen]byte
		encodeTraceSpanV2(&again, got)
		if again != v2 {
			t.Fatalf("span %d: re-encode not byte-identical", i)
		}
		var v1 [spanPayloadLen]byte
		encodeTraceSpan(&v1, s)
		if !bytes.Equal(v1[:], v2[:spanPayloadLen]) {
			t.Fatalf("span %d: v2 prefix diverges from the v1 encoding", i)
		}
		if v1span := decodeTraceSpan(v1[:]); v1span.ID != 0 || v1span.Begin != 0 || v1span.Dur != 0 {
			t.Fatalf("span %d: v1 decode invented v2 fields: %+v", i, v1span)
		}
	}
}

// TestTracedFrameStampsIdentityAndTiming runs one frame on a tracer
// with a unit and a counter clock and checks every committed span
// carries the frame's TraceID and a consistent begin/duration schedule.
func TestTracedFrameStampsIdentityAndTiming(t *testing.T) {
	o := New(Config{Name: "v2", Unit: 7, Clock: NewCounterClock()})
	traceOneFrame(o, 5, 1)
	spans := o.Trace.Spans()
	if len(spans) != 5 {
		t.Fatalf("held %d spans, want 5", len(spans))
	}
	want := TraceID(7, 5)
	for i, s := range spans {
		if s.ID != want {
			t.Fatalf("span %d ID = %016x, want %016x", i, s.ID, want)
		}
		if s.Begin == 0 {
			t.Fatalf("span %d has no begin tick", i)
		}
	}
	root := spans[0]
	if root.Dur == 0 {
		t.Fatal("root span has no duration")
	}
	// The root covers the whole frame: every child begins and ends
	// within [root.Begin, root.Begin+root.Dur].
	for i, s := range spans[1:] {
		if s.Begin < root.Begin || s.Begin+s.Dur > root.Begin+root.Dur {
			t.Fatalf("child %d [%d,+%d] outside root [%d,+%d]", i, s.Begin, s.Dur, root.Begin, root.Dur)
		}
	}
	// Siblings run sequentially: each child's duration ends where the
	// next begins (the shared boundary clock read).
	for i := 1; i < len(spans)-1; i++ {
		if spans[i].Begin+spans[i].Dur != spans[i+1].Begin {
			t.Fatalf("child %d ends at %d but child %d begins at %d",
				i, spans[i].Begin+spans[i].Dur, i+1, spans[i+1].Begin)
		}
	}
	if o.TraceID() != 0 {
		t.Fatal("TraceID outside an open frame must be 0")
	}
}

// TestUnclockedTracerStaysV1 pins the compatibility contract: without a
// unit or clock, committed spans carry zero v2 fields and the downlink
// emits the original 31-byte v1 records byte-for-byte.
func TestUnclockedTracerStaysV1(t *testing.T) {
	mk := func(cfg Config) []byte {
		o := New(cfg)
		link := NewDownlink(DownlinkConfig{BytesPerFrame: 256})
		o.AttachDownlink(link)
		traceOneFrame(o, 0, 1)
		return link.Capture()
	}
	plain := mk(Config{Name: "v1"})
	again := mk(Config{Name: "v1"})
	if !bytes.Equal(plain, again) {
		t.Fatal("unclocked capture not deterministic")
	}
	frame, recs, _, err := DecodeFrameAppend(plain, nil)
	if err != nil || frame != 0 {
		t.Fatalf("decoding unclocked capture: frame=%d err=%v", frame, err)
	}
	for _, r := range recs {
		if r.Kind == RecSpanV2 {
			t.Fatal("unclocked tracer emitted a v2 record")
		}
	}
	traced := mk(Config{Name: "v1", Unit: 3, Clock: NewCounterClock()})
	if bytes.Equal(plain, traced) {
		t.Fatal("traced capture should differ from the v1 capture")
	}
}

// TestTracedDownlinkRoundTrip pushes a traced frame through the
// downlink and checks the v2 records decode with identity and timing
// intact.
func TestTracedDownlinkRoundTrip(t *testing.T) {
	o := New(Config{Name: "v2", Unit: 7, Clock: NewCounterClock()})
	link := NewDownlink(DownlinkConfig{BytesPerFrame: 384})
	o.AttachDownlink(link)
	traceOneFrame(o, 4, 1)

	frame, recs, _, err := DecodeFrameAppend(link.Capture(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if frame != 4 {
		t.Fatalf("decoded frame = %d, want 4", frame)
	}
	want := o.Trace.Spans()
	byIdx := map[int16]TraceSpan{}
	for _, r := range recs {
		if r.Kind != RecSpanV2 {
			continue
		}
		byIdx[r.Span.Idx] = r.Span
	}
	if len(byIdx) != len(want) {
		t.Fatalf("downlinked %d v2 spans, ring holds %d", len(byIdx), len(want))
	}
	for _, w := range want {
		if got := byIdx[w.Idx]; got != w {
			t.Fatalf("span idx %d round trip = %+v, want %+v", w.Idx, got, w)
		}
	}
}

// TestTraceWrapBoundaries pins Overflow and the held count at the exact
// ring-capacity boundaries: one span short of full, exactly full, and
// one frame past full.
func TestTraceWrapBoundaries(t *testing.T) {
	const spansPerFrame = 2 // root + one child
	capacity := traceScratch * 2
	tc := NewTraceCtx(capacity)
	frames := 0
	emit := func() {
		tc.Begin(frames)
		tc.Child(StageInfer, int32(frames), 0, 0)
		tc.End()
		frames++
	}
	for tc.Total() < uint64(capacity-spansPerFrame) {
		emit()
	}
	if tc.Len() != capacity-spansPerFrame {
		t.Fatalf("one frame short of full: held %d, want %d", tc.Len(), capacity-spansPerFrame)
	}
	emit()
	if tc.Len() != capacity || tc.Total() != uint64(capacity) {
		t.Fatalf("exactly full: held %d total %d, want %d", tc.Len(), tc.Total(), capacity)
	}
	emit()
	if tc.Len() != capacity {
		t.Fatalf("one frame past full: held %d, want %d (ring never exceeds capacity)", tc.Len(), capacity)
	}
	if tc.Total() != uint64(capacity+spansPerFrame) {
		t.Fatalf("total = %d, want %d", tc.Total(), capacity+spansPerFrame)
	}
	if tc.Overflow() != 0 {
		t.Fatalf("ring wrap counted as overflow: %d", tc.Overflow())
	}
	// The oldest held span is now the one that displaced the first frame.
	if spans := tc.Spans(); spans[0].Seq != spansPerFrame {
		t.Fatalf("oldest held seq = %d, want %d", spans[0].Seq, spansPerFrame)
	}

	// Scratch overflow at its exact boundary: the frame holds
	// traceScratch spans including the root; span traceScratch+1 is the
	// first dropped.
	tc2 := NewTraceCtx(capacity)
	tc2.Begin(0)
	for i := 0; i < traceScratch-1; i++ {
		if ref := tc2.Child(StageInfer, int32(i), 0, 0); ref == NoSpan {
			t.Fatalf("child %d rejected below the scratch budget", i)
		}
	}
	if tc2.Overflow() != 0 {
		t.Fatalf("overflow before the boundary: %d", tc2.Overflow())
	}
	if ref := tc2.Child(StageInfer, 99, 0, 0); ref != NoSpan {
		t.Fatal("child beyond the scratch budget accepted")
	}
	tc2.End()
	if tc2.Overflow() != 1 || tc2.Total() != traceScratch {
		t.Fatalf("overflow = %d total = %d, want 1 and %d", tc2.Overflow(), tc2.Total(), traceScratch)
	}
}

// TestTraceV2RecordPathZeroAllocs holds the traced record path — clock
// reads, identity stamping, v2 downlink emission — to the same bar as
// the v1 path: 0 allocs/op.
func TestTraceV2RecordPathZeroAllocs(t *testing.T) {
	o := New(Config{Name: "alloc-v2", Unit: 7, Clock: NewCounterClock()})
	o.AttachDownlink(NewDownlink(DownlinkConfig{BytesPerFrame: 512}))
	frame := 0
	allocs := testing.AllocsPerRun(200, func() {
		traceOneFrame(o, frame, 1)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("traced v2 record path allocates: %v allocs/op", allocs)
	}
}

// BenchmarkTraceV2RecordPath is the traced counterpart of
// BenchmarkTraceRecordPath: full per-frame path with identity and
// timing capture, 0 allocs/op.
func BenchmarkTraceV2RecordPath(b *testing.B) {
	o := New(Config{Name: "bench-v2", Unit: 7, Clock: NewCounterClock()})
	o.AttachDownlink(NewDownlink(DownlinkConfig{BytesPerFrame: 320, CaptureBytes: 1 << 26}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceOneFrame(o, i, 1)
	}
}
