package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a static metrics registry: every metric is declared up
// front (typically at system build time) and recorded through the handle
// the declaration returned. The record path — Counter.Add, Gauge.Set,
// Histogram.Observe — is lock-free, allocation-free and bounded-latency:
// no maps, no interface boxing, no growth. Registration takes a mutex and
// may allocate; it is a build-time activity, never a per-frame one.
//
//safexplain:req REQ-DET REQ-XAI
type Registry struct {
	name string

	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// NewRegistry returns an empty registry. name labels every exported
// metric (Prometheus label system="name").
//
//safexplain:req REQ-DET
func NewRegistry(name string) *Registry {
	return &Registry{name: name}
}

// Name returns the registry's system label.
func (r *Registry) Name() string { return r.name }

// Counter declares a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.mu.Lock()
	r.counters = append(r.counters, c)
	r.mu.Unlock()
	return c
}

// Gauge declares a set-to-current-value gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.mu.Lock()
	r.gauges = append(r.gauges, g)
	r.mu.Unlock()
	return g
}

// Histogram declares a fixed-bucket histogram. The bucket upper bounds
// are frozen here, at declaration time — the static sizing a WCET-budget
// tracker needs (e.g. fractions of the frame budget). Bounds are sorted;
// an implicit +Inf bucket is always present.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{name: name, help: help, bounds: bs,
		buckets: make([]atomic.Uint64, len(bs)+1)}
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// Counter is a concurrency-safe monotonic counter.
//
//safexplain:req REQ-DET REQ-WCET
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one. Zero-allocation, lock-free.
//
//safexplain:hotpath
//safexplain:wcet
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Zero-allocation, lock-free.
//
//safexplain:hotpath
//safexplain:wcet
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count. Zero-allocation, lock-free.
//
//safexplain:hotpath
//safexplain:wcet
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a concurrency-safe last-value gauge.
//
//safexplain:req REQ-DET REQ-WCET
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v. Zero-allocation, lock-free.
//
//safexplain:hotpath
//safexplain:wcet
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value. Zero-allocation, lock-free.
//
//safexplain:hotpath
//safexplain:wcet
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a concurrency-safe fixed-bucket histogram. Bucket i counts
// observations <= bounds[i]; the last bucket is +Inf.
//
//safexplain:req REQ-DET REQ-WCET
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64

	// Exemplar retention: the worst (largest) observation since the last
	// scrape and the TraceID that produced it, guarded by a dedicated
	// mutex so the (value, id) pair is always consistent. The mutex is
	// uncontended in the steady state — one writer per frame — and its
	// critical section is a handful of scalar stores, so the exemplar
	// path stays allocation-free and bounded.
	exMu    sync.Mutex
	exSet   bool    //safexplain:guardedby exMu
	exValue float64 //safexplain:guardedby exMu
	exID    uint64  //safexplain:guardedby exMu
}

// Observe records one value. Zero-allocation; the bucket scan is over the
// fixed bound list, so latency is bounded by the declared size.
//
//safexplain:hotpath
//safexplain:wcet
func (h *Histogram) Observe(v float64) {
	i := 0
	//safexplain:bounded bound list frozen at declaration time
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	//safexplain:bounded CAS retry; contention bounded by writer count per frame
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value like Observe and, when id is a
// valid TraceID (non-zero), retains it as the histogram's exemplar if
// it is the worst observation since the last scrape — OpenMetrics-style
// exemplar linkage, so a WCET burn-rate alert can name the exact trace
// that blew the budget. Ties keep the lower TraceID, making retention
// order-independent and therefore deterministic under concurrency.
// Nil-safe and zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (h *Histogram) ObserveExemplar(v float64, id uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if id == 0 {
		return
	}
	h.exMu.Lock()
	// Ties are detected bit-exactly: both sides are raw observations,
	// never arithmetic results, so bit equality is value equality here.
	if !h.exSet || v > h.exValue ||
		(math.Float64bits(v) == math.Float64bits(h.exValue) && id < h.exID) {
		h.exSet, h.exValue, h.exID = true, v, id
	}
	h.exMu.Unlock()
}

// TakeExemplar returns the worst-case exemplar retained since the
// previous call and resets it — scrape semantics: each snapshot carries
// the worst observation of its own scrape interval. ok is false when no
// exemplar was recorded in the interval.
func (h *Histogram) TakeExemplar() (v float64, id uint64, ok bool) {
	if h == nil {
		return 0, 0, false
	}
	h.exMu.Lock()
	v, id, ok = h.exValue, h.exID, h.exSet
	h.exSet, h.exValue, h.exID = false, 0, 0
	h.exMu.Unlock()
	return v, id, ok
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Bounds returns a copy of the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns a copy of the per-bucket counts; the final entry
// is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns a bucket-interpolated quantile estimate in [0,1]
// (upper bound of the bucket holding the q-th observation; the exact
// shape inside a bucket is unknown). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// BudgetBounds derives WCET-budget histogram bounds from a frame budget:
// fixed fractions {25%, 50%, 75%, 90%, 100%, 110%, 125%, 150%} of the
// budget, so the exported histogram directly answers "how close to the
// budget do frames run, and how far past it do misses land".
//
//safexplain:req REQ-WCET
func BudgetBounds(budget uint64) []float64 {
	fr := budgetFractions()
	out := make([]float64, len(fr))
	for i, f := range fr {
		out[i] = f * float64(budget)
	}
	return out
}

// BudgetBoundIndex is the index of the 1.0x-budget bound inside a
// BudgetBounds histogram — the bound a WCET burn-rate rule compares
// against, so the SLO budget is read straight off the registry's
// declared bounds instead of being configured twice.
//
//safexplain:req REQ-WCET
const BudgetBoundIndex = 4

func budgetFractions() []float64 {
	return []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5}
}
