// Package obs is the deterministic observability substrate: a static
// metrics registry (counters, gauges, fixed-bucket histograms), a
// flight-recorder ring buffer of structured spans, and exporters
// (Prometheus text exposition, JSON snapshot, human-readable table).
//
// Monitoring a safety-critical runtime must not perturb the properties it
// reports on — pillar P4's timing determinism in particular. Every record
// path in this package is therefore zero-allocation (enforced by
// testing.AllocsPerRun in the test suite, like qnn's arena), lock-free or
// bounded-latency, and statically sized: metrics are declared at build
// time and recorded through handles, the flight recorder overwrites a
// fixed ring, and nothing on the hot path touches a map, grows a slice,
// or formats a string. Experiment T13 ("probe effect") measures exactly
// this: the observability on/off delta in ns/frame, allocs/frame, and the
// pWCET estimate.
//
// The package is a leaf substrate: it imports nothing from the rest of
// the repo. The wiring layers (core, rt, fdir) link flight-recorder dump
// hashes into the trace evidence chain themselves.
//
// The package is replay-deterministic: no wall clock, no ambient
// randomness, no map iteration anywhere — every export walks statically
// ordered declaration lists.
//
//safexplain:deterministic
package obs

import (
	"fmt"
	"sync"
)

// Config sizes an Obs bundle. Zero values get defaults.
//
//safexplain:req REQ-DET
type Config struct {
	// Name labels exported metrics (Prometheus label system="name").
	Name string
	// FlightCapacity is the span ring size (default 256).
	FlightCapacity int
	// TraceCapacity is the causal trace-context ring size (default 1024;
	// roughly six spans per frame, so ~170 frames of causal history).
	TraceCapacity int
	// FrameBudget, when non-zero, derives the frame-cycles histogram
	// buckets from the WCET budget via BudgetBounds; otherwise a generic
	// decade ladder is used.
	FrameBudget uint64
	// MaxDumps bounds the retained auto-dump records (default 16). The
	// dump counter keeps counting past the bound.
	MaxDumps int
	// Unit is the fleet unit id folded into every frame's TraceID
	// (unit<<32 | frame). Zero leaves traces unit-less; together with a
	// nil Clock that disables v2 span records entirely.
	Unit uint32
	// Clock is the injected monotonic tick source for span begin/duration
	// capture — a wall-derived reader in production, NewCounterClock in
	// deterministic tests. Nil (the default) disables timing capture; the
	// package itself never reads the ambient clock.
	Clock func() uint64
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "system"
	}
	if c.FlightCapacity <= 0 {
		c.FlightCapacity = 256
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 1024
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 16
	}
	return c
}

// DumpRecord is one automatic flight-recorder dump: the trigger, the
// frame it fired on, and the span hash that links the dumped history into
// the evidence chain.
//
//safexplain:req REQ-DET REQ-TRUST
type DumpRecord struct {
	Trigger string
	Frame   int
	Hash    string
	Spans   int
}

// Obs bundles the registry, the flight recorder, and the standard
// runtime metric handles the SAFEXPLAIN stack records into. A nil *Obs
// is the disabled monitor: the wiring layers guard every record with one
// nil check, which is the entire cost of observability-off.
//
//safexplain:req REQ-DET
type Obs struct {
	Reg    *Registry
	Flight *Flight
	Trace  *TraceCtx
	Down   *Downlink // nil until AttachDownlink; telemetry is optional

	// Per-frame operate path.
	Frames    *Counter // frames processed
	Delivered *Counter // trusted (or degraded-delivered) outputs
	Fallbacks *Counter // fallback / withheld outputs

	// FDIR health management.
	Anomalies   *Counter // detector findings
	Quarantines *Counter // quarantine entries
	Restores    *Counter // golden-image reloads
	Health      *Gauge   // current health state (fdir.State ordinal)

	// Real-time executive.
	DeadlineMisses *Counter   // task budget overruns
	WatchdogFires  *Counter   // frame budget overruns
	ShedSlots      *Counter   // tasks shed in high-criticality mode
	FrameCycles    *Histogram // frame cycles vs the WCET budget

	// Trust monitoring.
	TrustScore *Histogram // supervisor score per observed frame

	DumpsTotal *Counter // automatic flight-recorder dumps

	cfg   Config
	mu    sync.Mutex
	dumps []DumpRecord
}

// New builds an Obs bundle with the standard metric set declared.
//
//safexplain:req REQ-DET
func New(cfg Config) *Obs {
	cfg = cfg.withDefaults()
	reg := NewRegistry(cfg.Name)
	cycleBounds := []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
	if cfg.FrameBudget > 0 {
		cycleBounds = BudgetBounds(cfg.FrameBudget)
	}
	tr := NewTraceCtx(cfg.TraceCapacity)
	tr.SetUnit(cfg.Unit)
	tr.SetClock(cfg.Clock)
	return &Obs{
		Reg:    reg,
		Flight: NewFlight(cfg.FlightCapacity),
		Trace:  tr,

		Frames:    reg.Counter("frames_total", "frames processed by the operate path"),
		Delivered: reg.Counter("delivered_total", "frames whose pattern output was delivered"),
		Fallbacks: reg.Counter("fallbacks_total", "frames answered by fallback or withheld"),

		Anomalies:   reg.Counter("fdir_anomalies_total", "FDIR detector findings"),
		Quarantines: reg.Counter("fdir_quarantines_total", "FDIR quarantine entries"),
		Restores:    reg.Counter("fdir_restores_total", "verified golden-image reloads"),
		Health:      reg.Gauge("fdir_health_state", "current FDIR health state ordinal"),

		DeadlineMisses: reg.Counter("rt_deadline_misses_total", "task budget overruns"),
		WatchdogFires:  reg.Counter("rt_watchdog_fires_total", "frame budget overruns"),
		ShedSlots:      reg.Counter("rt_shed_slots_total", "tasks shed in high-criticality mode"),
		FrameCycles: reg.Histogram("rt_frame_cycles",
			"frame execution cycles against the WCET budget", cycleBounds...),

		TrustScore: reg.Histogram("trust_score",
			"supervisor trust score per observed frame",
			0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1),

		DumpsTotal: reg.Counter("flight_dumps_total", "automatic flight-recorder dumps"),

		cfg: cfg,
	}
}

// Span records one flight-recorder span. Nil-safe and zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (o *Obs) Span(frame int, stage Stage, code int32, value float64) {
	if o == nil {
		return
	}
	o.Flight.Record(frame, stage, code, value)
}

// AttachDownlink routes the trace context and auto-dump notices into a
// bounded telemetry downlink. Call before operating; nil-safe.
func (o *Obs) AttachDownlink(d *Downlink) {
	if o == nil {
		return
	}
	o.Down = d
	o.Trace.Attach(d)
}

// TraceBegin opens the causal trace for one frame. Nil-safe,
// zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (o *Obs) TraceBegin(frame int) {
	if o == nil {
		return
	}
	o.Trace.Begin(frame)
}

// TraceChild records one stage span in the open frame, causally linked
// to cause. Nil-safe, zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (o *Obs) TraceChild(stage Stage, code int32, value float64, cause SpanRef) SpanRef {
	if o == nil {
		return NoSpan
	}
	return o.Trace.Child(stage, code, value, cause)
}

// TraceSetCode patches a recorded span's code (the infer span learns its
// delivered class only after the pattern votes). Nil-safe,
// zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (o *Obs) TraceSetCode(ref SpanRef, code int32) {
	if o == nil {
		return
	}
	o.Trace.SetCode(ref, code)
}

// TraceRoot returns the open frame's root span ref. Nil-safe.
//
//safexplain:hotpath
//safexplain:wcet
func (o *Obs) TraceRoot() SpanRef {
	if o == nil {
		return NoSpan
	}
	return o.Trace.Root()
}

// TraceID returns the open frame's distributed trace identity, or 0
// with no open frame — what the record path passes to
// Histogram.ObserveExemplar so a worst-case observation names the trace
// that produced it. Nil-safe, zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (o *Obs) TraceID() uint64 {
	if o == nil {
		return 0
	}
	return o.Trace.TraceID()
}

// TraceEnd commits the frame's causal spans and, when a downlink is
// attached, pushes the housekeeping metric samples and emits one
// telemetry frame under the bandwidth budget. Nil-safe,
// zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (o *Obs) TraceEnd(frame int) {
	if o == nil {
		return
	}
	o.Trace.End()
	if o.Down != nil {
		o.Down.PushMetric(MetricFrames, float64(o.Frames.Value()))
		o.Down.PushMetric(MetricFallbacks, float64(o.Fallbacks.Value()))
		o.Down.PushMetric(MetricHealth, o.Health.Value())
		o.Down.EmitFrame(frame)
	}
}

// AutoDump snapshots the flight recorder in response to a runtime event
// (deadline miss, quarantine): it hashes the held spans, retains the dump
// record (bounded by Config.MaxDumps) and counts it. When a downlink is
// attached the dump notice is queued on the incident channel. This is
// the exceptional path — it allocates; the caller links the returned
// hash into its evidence chain. Nil-safe.
func (o *Obs) AutoDump(trigger string, frame int) DumpRecord {
	if o == nil {
		return DumpRecord{}
	}
	rec := DumpRecord{Trigger: trigger, Frame: frame,
		Hash: o.Flight.Hash(), Spans: o.Flight.Len()}
	o.mu.Lock()
	if len(o.dumps) < o.cfg.MaxDumps {
		o.dumps = append(o.dumps, rec)
	}
	o.mu.Unlock()
	o.DumpsTotal.Inc()
	if o.Down != nil {
		o.Down.PushDump(rec)
	}
	return rec
}

// Dumps returns the retained auto-dump records in order.
func (o *Obs) Dumps() []DumpRecord {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]DumpRecord(nil), o.dumps...)
}

// Describe returns a one-line summary suitable for evidence records.
func (o *Obs) Describe() string {
	if o == nil {
		return "observability disabled"
	}
	return fmt.Sprintf("observability %s: flight capacity %d, %d spans recorded, hash %.12s…",
		o.cfg.Name, o.Flight.Cap(), o.Flight.Total(), o.Flight.Hash())
}
