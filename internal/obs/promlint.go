package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Exposition conformance: LintExposition checks the structural
// invariants of the Prometheus text format that scrape pipelines rely
// on — one HELP and one TYPE line per family, valid metric names,
// parseable sample values, and monotone cumulative histogram buckets
// capped by a +Inf bucket that equals the family count. The exporter
// tests and the fleet scrape endpoint both gate on a clean lint, so a
// malformed exposition is caught in CI, not by a monitoring stack in
// the field.

// promIssue formats one conformance finding with its 1-based line.
func promIssue(line int, format string, args ...interface{}) string {
	return fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...))
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// sampleFamily maps a sample's metric name to its family: histogram
// series drop the _bucket/_sum/_count suffix when their base family was
// declared with TYPE histogram.
func sampleFamily(name string, histFamilies map[string]bool) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) && histFamilies[strings.TrimSuffix(name, suf)] {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// splitSample splits a sample line into metric name, label text (without
// braces, "" when absent) and value text. ok=false on lines that do not
// scan as a sample at all.
func splitSample(line string) (name, labels, value string, ok bool) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", false
		}
		name, labels, rest = rest[:i], rest[i+1:j], strings.TrimSpace(rest[j+1:])
	} else {
		k := strings.IndexByte(rest, ' ')
		if k < 0 {
			return "", "", "", false
		}
		name, rest = rest[:k], strings.TrimSpace(rest[k:])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", "", false
	}
	return name, labels, fields[0], true
}

// labelValue extracts one label's value from label text, ok=false when
// the label is absent.
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] != key {
			continue
		}
		v, err := strconv.Unquote(kv[1])
		if err != nil {
			return "", false
		}
		return v, true
	}
	return "", false
}

// stripLabel removes one label from label text, preserving the order of
// the rest — the grouping key for histogram bucket series.
func stripLabel(labels, key string) string {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, part := range parts {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) == 2 && kv[0] == key {
			continue
		}
		kept = append(kept, part)
	}
	return strings.Join(kept, ",")
}

// bucketSeries accumulates one histogram bucket series (family + fixed
// labels) in exposition order.
type bucketSeries struct {
	family string
	line   int
	les    []float64
	counts []float64
	hasInf bool
	infVal float64
}

// LintExposition checks text against the Prometheus exposition format
// invariants and returns the issues found, in input order; an empty
// slice is a clean bill. It is a pure function used as a test oracle for
// every exposition this repo emits (unit exporter and fleet endpoint).
//
//safexplain:req REQ-XAI
func LintExposition(text string) []string {
	var issues []string
	helpSeen := map[string]int{}
	typeSeen := map[string]int{}
	famType := map[string]string{}
	histFamilies := map[string]bool{}
	buckets := map[string]*bucketSeries{}
	var bucketOrder []string
	countVal := map[string]float64{}

	lines := strings.Split(text, "\n")
	for i, line := range lines {
		ln := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 3 {
				issues = append(issues, promIssue(ln, "malformed comment %q", line))
				continue
			}
			fam := fields[2]
			if !validMetricName(fam) {
				issues = append(issues, promIssue(ln, "invalid metric name %q", fam))
			}
			if fields[1] == "HELP" {
				helpSeen[fam]++
				if helpSeen[fam] > 1 {
					issues = append(issues, promIssue(ln, "duplicate # HELP for %q", fam))
				}
				continue
			}
			typeSeen[fam]++
			if typeSeen[fam] > 1 {
				issues = append(issues, promIssue(ln, "duplicate # TYPE for %q", fam))
			}
			if len(fields) < 4 {
				issues = append(issues, promIssue(ln, "# TYPE for %q names no type", fam))
				continue
			}
			typ := fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				issues = append(issues, promIssue(ln, "unknown type %q for %q", typ, fam))
			}
			famType[fam] = typ
			if typ == "histogram" {
				histFamilies[fam] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}

		name, labels, value, ok := splitSample(line)
		if !ok {
			issues = append(issues, promIssue(ln, "unparseable sample %q", line))
			continue
		}
		if !validMetricName(name) {
			issues = append(issues, promIssue(ln, "invalid metric name %q", name))
			continue
		}
		v, err := parsePromValue(value)
		if err != nil {
			issues = append(issues, promIssue(ln, "sample %q: bad value %q", name, value))
			continue
		}
		fam := sampleFamily(name, histFamilies)
		if typeSeen[fam] == 0 {
			issues = append(issues, promIssue(ln, "sample %q has no preceding # TYPE", name))
		}
		if helpSeen[fam] == 0 {
			issues = append(issues, promIssue(ln, "sample %q has no preceding # HELP", name))
		}
		if famType[fam] == "counter" && v < 0 {
			issues = append(issues, promIssue(ln, "counter %q is negative (%g)", name, v))
		}

		if histFamilies[fam] && strings.HasSuffix(name, "_bucket") {
			le, hasLE := labelValue(labels, "le")
			if !hasLE {
				issues = append(issues, promIssue(ln, "bucket %q has no le label", name))
				continue
			}
			key := fam + "{" + stripLabel(labels, "le") + "}"
			bs := buckets[key]
			if bs == nil {
				bs = &bucketSeries{family: fam, line: ln}
				buckets[key] = bs
				bucketOrder = append(bucketOrder, key)
			}
			if le == "+Inf" {
				bs.hasInf = true
				bs.infVal = v
				bs.counts = append(bs.counts, v)
				bs.les = append(bs.les, math.Inf(1))
				continue
			}
			lv, err := strconv.ParseFloat(le, 64)
			if err != nil {
				issues = append(issues, promIssue(ln, "bucket %q: bad le %q", name, le))
				continue
			}
			bs.les = append(bs.les, lv)
			bs.counts = append(bs.counts, v)
		}
		if histFamilies[fam] && strings.HasSuffix(name, "_count") {
			countVal[fam+"{"+labels+"}"] = v
		}
	}

	for _, key := range bucketOrder {
		bs := buckets[key]
		for i := 1; i < len(bs.les); i++ {
			if bs.les[i] <= bs.les[i-1] {
				issues = append(issues, promIssue(bs.line, "histogram %s: le bounds not increasing (%g after %g)",
					key, bs.les[i], bs.les[i-1]))
			}
			if bs.counts[i] < bs.counts[i-1] {
				issues = append(issues, promIssue(bs.line, "histogram %s: cumulative bucket counts decrease (%g after %g)",
					key, bs.counts[i], bs.counts[i-1]))
			}
		}
		if !bs.hasInf {
			issues = append(issues, promIssue(bs.line, "histogram %s: no +Inf bucket", key))
			continue
		}
		if cv, ok := countVal[key]; ok && math.Float64bits(cv) != math.Float64bits(bs.infVal) {
			issues = append(issues, promIssue(bs.line, "histogram %s: +Inf bucket %g != _count %g",
				key, bs.infVal, cv))
		}
	}
	return issues
}

// splitOMExemplar splits an OpenMetrics sample line into its sample
// part and its exemplar part (after " # "); hasEx is false when the
// line carries no exemplar.
func splitOMExemplar(line string) (sample, exemplar string, hasEx bool) {
	if i := strings.Index(line, " # "); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+3:]), true
	}
	return line, "", false
}

// lintOMExemplar checks one exemplar's syntax: {label="value",...}
// followed by a parseable value and an optional timestamp.
func lintOMExemplar(ln int, ex string) []string {
	var issues []string
	if !strings.HasPrefix(ex, "{") {
		return []string{promIssue(ln, "exemplar %q does not start with a labelset", ex)}
	}
	j := strings.IndexByte(ex, '}')
	if j < 0 {
		return []string{promIssue(ln, "exemplar %q has an unterminated labelset", ex)}
	}
	labels := ex[1:j]
	for _, part := range strings.Split(labels, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || !validMetricName(kv[0]) {
			issues = append(issues, promIssue(ln, "exemplar label %q malformed", part))
			continue
		}
		if _, err := strconv.Unquote(kv[1]); err != nil {
			issues = append(issues, promIssue(ln, "exemplar label value %q not a quoted string", kv[1]))
		}
	}
	fields := strings.Fields(strings.TrimSpace(ex[j+1:]))
	if len(fields) < 1 || len(fields) > 2 {
		return append(issues, promIssue(ln, "exemplar %q has no value", ex))
	}
	if _, err := parsePromValue(fields[0]); err != nil {
		issues = append(issues, promIssue(ln, "exemplar value %q unparseable", fields[0]))
	}
	return issues
}

// LintOpenMetrics checks text against the OpenMetrics exposition
// invariants this repo relies on: the mandatory trailing # EOF marker,
// counter samples carrying the _total suffix over a family declared
// without it, well-formed exemplars on histogram bucket lines only, and
// — after normalizing those OpenMetrics-specific constructs away — all
// the Prometheus structural invariants LintExposition enforces
// (HELP/TYPE presence, monotone cumulative buckets, +Inf == _count).
// Pure; used as the test oracle for every OpenMetrics exposition.
//
//safexplain:req REQ-XAI
func LintOpenMetrics(text string) []string {
	var issues []string
	lines := strings.Split(text, "\n")

	// The # EOF marker must be the last content of the exposition.
	last := len(lines) - 1
	for last >= 0 && strings.TrimSpace(lines[last]) == "" {
		last--
	}
	if last < 0 || strings.TrimSpace(lines[last]) != "# EOF" {
		issues = append(issues, promIssue(last+1, "exposition does not end with # EOF"))
	} else {
		lines = lines[:last]
	}

	// First pass: family types, so exemplar placement can be checked.
	famType := map[string]string{}
	histFamilies := map[string]bool{}
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) >= 4 {
				famType[fields[2]] = fields[3]
				if fields[3] == "histogram" {
					histFamilies[fields[2]] = true
				}
			}
		}
	}

	// Second pass: validate and strip OpenMetrics constructs, rewriting
	// counter families to their sample names so the Prometheus linter
	// can check everything else on the normalized text.
	norm := make([]string, 0, len(lines))
	for i, line := range lines {
		ln := i + 1
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				fam := fields[2]
				if strings.HasSuffix(fam, "_total") && famType[fam] == "counter" {
					issues = append(issues, promIssue(ln, "counter family %q must be declared without the _total suffix", fam))
				}
				if famType[fam] == "counter" {
					line = strings.Replace(line, " "+fam, " "+fam+"_total", 1)
				}
			}
			norm = append(norm, line)
			continue
		}
		if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
			norm = append(norm, line)
			continue
		}
		sample, ex, hasEx := splitOMExemplar(line)
		if hasEx {
			name, _, _, ok := splitSample(sample)
			if !ok || !histFamilies[sampleFamily(name, histFamilies)] || !strings.HasSuffix(name, "_bucket") {
				issues = append(issues, promIssue(ln, "exemplar on non-bucket sample %q", sample))
			}
			issues = append(issues, lintOMExemplar(ln, ex)...)
		}
		if name, _, _, ok := splitSample(sample); ok {
			fam := sampleFamily(name, histFamilies)
			if famType[fam] == "counter" && !strings.HasSuffix(name, "_total") {
				issues = append(issues, promIssue(ln, "counter sample %q must carry the _total suffix", name))
			}
		}
		norm = append(norm, sample)
	}
	return append(issues, LintExposition(strings.Join(norm, "\n"))...)
}

// parsePromValue parses a sample value, accepting the exposition
// spellings of the infinities and NaN.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
