package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
)

// The downlink models the embedded reality that telemetry bandwidth is a
// budgeted resource: an on-board encoder packs prioritized records into
// fixed-size frames (housekeeping < events < incident dumps), drops and
// counts what does not fit, and a pure-function ground-side decoder
// recovers the stream. Everything on the emit path is statically
// allocated; the decoder never panics or over-reads on corrupt input
// (FuzzDownlinkDecode).

// Priority orders the downlink channels. Higher drains first.
//
//safexplain:req REQ-DET
type Priority uint8

// Downlink channel priorities.
//
//safexplain:req REQ-DET
const (
	PriHousekeeping Priority = iota // periodic counters and gauges
	PriEvent                        // anomaly verdicts, transitions, recoveries
	PriIncident                     // flight-recorder dump notices
	numPriorities
)

// String returns the priority channel name.
func (p Priority) String() string {
	switch p {
	case PriHousekeeping:
		return "housekeeping"
	case PriEvent:
		return "event"
	case PriIncident:
		return "incident"
	default:
		return fmt.Sprintf("Priority(%d)", uint8(p))
	}
}

// RecordKind tags one downlinked record.
//
//safexplain:req REQ-DET
type RecordKind uint8

// Downlink record kinds. Unknown kinds are skipped by the decoder
// (forward compatibility), never an error.
//
//safexplain:req REQ-DET
const (
	RecInvalid RecordKind = iota
	RecSpan               // one causal trace span (v1, 31-byte payload)
	RecMetric             // one housekeeping metric sample
	RecDump               // one flight-recorder dump notice
	RecSpanV2             // one causal trace span with TraceID + begin/duration ticks (55 B)
)

// Housekeeping metric IDs carried by RecMetric records.
//
//safexplain:req REQ-DET
const (
	MetricFrames    uint16 = 1 // frames operated
	MetricFallbacks uint16 = 2 // fallback / withheld outputs
	MetricHealth    uint16 = 3 // FDIR health state ordinal
)

// Trigger codes carried by RecDump records (the trigger string does not
// fit a bounded wire format).
//
//safexplain:req REQ-DET
const (
	TriggerOther        uint8 = 0
	TriggerQuarantine   uint8 = 1
	TriggerDeadlineMiss uint8 = 2
)

// TriggerCode maps an auto-dump trigger string to its wire code.
//
//safexplain:req REQ-DET
//safexplain:hotpath
//safexplain:wcet
func TriggerCode(trigger string) uint8 {
	switch trigger {
	case "fdir-quarantine":
		return TriggerQuarantine
	case "deadline-miss":
		return TriggerDeadlineMiss
	}
	return TriggerOther
}

// TriggerName is the inverse of TriggerCode.
//
//safexplain:req REQ-XAI
func TriggerName(code uint8) string {
	switch code {
	case TriggerQuarantine:
		return "fdir-quarantine"
	case TriggerDeadlineMiss:
		return "deadline-miss"
	}
	return "other"
}

// hashPrefix parses the first 16 hex digits of a dump hash into a uint64
// without allocating — the wire carries an 8-byte prefix, enough to match
// a dump notice to the full hash in the evidence chain.
//
//safexplain:hotpath
//safexplain:wcet
func hashPrefix(hash string) uint64 {
	var v uint64
	if len(hash) < 16 {
		return 0
	}
	for i := 0; i < 16; i++ {
		c := hash[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0
		}
		v = v<<4 | d
	}
	return v
}

// Wire format (all little-endian):
//
//	frame  := 'S' 'X' ver=0x01 frame:u32 count:u16 record*
//	record := kind:u8 pri:u8 plen:u8 payload[plen]
//	span   := seq:u64 frame:u32 idx:u16 parent:u16 cause:u16 stage:u8 code:u32 value:f64   (31 B)
//	spanv2 := span traceid:u64 begin:u64 dur:u64                                           (55 B)
//	metric := id:u16 value:f64                                                             (10 B)
//	dump   := frame:u32 trigger:u8 spans:u16 hashprefix:u64                                (15 B)
const (
	wireMagic0       = 'S'
	wireMagic1       = 'X'
	wireVersion      = 0x01
	frameHeaderLen   = 9
	recHeaderLen     = 3
	spanPayloadLen   = 31
	spanV2PayloadLen = 55
	metricPayload    = 10
	dumpPayloadLen   = 15
	maxFrameCount    = 4096 // decoder sanity bound on records per frame
)

// downRec is one queued record awaiting downlink. Fixed-size so the
// per-priority queues are preallocated rings.
type downRec struct {
	kind RecordKind
	span TraceSpan // RecSpan
	id   uint16    // RecMetric
	val  float64   // RecMetric
	dump wireDump  // RecDump
}

// wireDump is the bounded on-wire form of a DumpRecord.
type wireDump struct {
	Frame      int32
	Trigger    uint8
	Spans      uint16
	HashPrefix uint64
}

// recQueue is a fixed-capacity FIFO ring of pending records.
type recQueue struct {
	buf  []downRec
	head int
	n    int
}

// push enqueues r, reporting false when the queue is full (drop-newest:
// the oldest records describe the earliest causality, which the
// reconstruction needs most). Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (q *recQueue) push(r downRec) bool {
	if q.n >= len(q.buf) {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = r
	q.n++
	return true
}

// peek returns a pointer to the oldest record; caller checks q.n first.
//
//safexplain:hotpath
//safexplain:wcet
func (q *recQueue) peek() *downRec {
	return &q.buf[q.head]
}

// pop discards the oldest record.
//
//safexplain:hotpath
//safexplain:wcet
func (q *recQueue) pop() {
	q.head = (q.head + 1) % len(q.buf)
	q.n--
}

// DownlinkConfig sizes a Downlink. Zero values get defaults.
//
//safexplain:req REQ-DET
type DownlinkConfig struct {
	// BytesPerFrame is the emit budget per telemetry frame (default 320).
	// The 9-byte frame header counts against it.
	BytesPerFrame int
	// QueueDepth is the per-priority pending-record capacity
	// (default 512). Full queues drop-newest and count the drop.
	QueueDepth int
	// CaptureBytes bounds the ground-capture buffer emitted frames are
	// appended to (default 1 MiB). A full capture drops whole frames.
	CaptureBytes int
}

func (c DownlinkConfig) withDefaults() DownlinkConfig {
	if c.BytesPerFrame <= 0 {
		c.BytesPerFrame = 320
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 512
	}
	if c.CaptureBytes <= 0 {
		c.CaptureBytes = 1 << 20
	}
	return c
}

// Downlink is the bounded telemetry encoder: three fixed-capacity
// priority queues drained strictly highest-first into fixed-budget
// frames. Records that do not fit stay queued (store-and-forward);
// records pushed into a full queue are dropped and counted. The emit
// path is zero-allocation: frames are written into a preallocated
// capture buffer.
//
//safexplain:req REQ-DET REQ-TRUST
type Downlink struct {
	mu      sync.Mutex
	cfg     DownlinkConfig
	queues  [numPriorities]recQueue
	dropped [numPriorities]uint64
	capture []byte
	used    int
	frames  uint64 // telemetry frames emitted
	dropFr  uint64 // frames dropped because the capture buffer was full
}

// NewDownlink builds a downlink with preallocated queues and capture.
//
//safexplain:req REQ-DET
func NewDownlink(cfg DownlinkConfig) *Downlink {
	cfg = cfg.withDefaults()
	d := &Downlink{cfg: cfg, capture: make([]byte, cfg.CaptureBytes)}
	for i := range d.queues {
		d.queues[i].buf = make([]downRec, cfg.QueueDepth)
	}
	return d
}

// spanPriority classifies a trace span into its downlink channel: health
// transitions, recoveries, drift alarms, anomaly verdicts and deadline
// misses are events; everything else is housekeeping.
//
//safexplain:hotpath
//safexplain:wcet
func spanPriority(s TraceSpan) Priority {
	switch s.Stage {
	case StageRecovery, StageDrift:
		return PriEvent
	case StageFDIR:
		if s.Code != int32(s.Value) { // health state changed this frame
			return PriEvent
		}
	case StageSupervisor:
		if s.Code > 0 { // detector findings present
			return PriEvent
		}
	case StageDeadline:
		if s.Code > 0 { // deadline misses present
			return PriEvent
		}
	}
	return PriHousekeeping
}

// PushSpan queues one trace span on its priority channel. Spans that
// carry distributed-tracing v2 data (a TraceID or captured ticks)
// travel as RecSpanV2 records; plain spans keep the v1 wire bytes, so a
// system with no unit and no clock downlinks byte-identically to every
// pre-v2 release. Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (d *Downlink) PushSpan(s TraceSpan) {
	pri := spanPriority(s)
	kind := RecSpan
	if s.ID != 0 || s.Begin != 0 || s.Dur != 0 {
		kind = RecSpanV2
	}
	d.mu.Lock()
	if !d.queues[pri].push(downRec{kind: kind, span: s}) {
		d.dropped[pri]++
	}
	d.mu.Unlock()
}

// PushMetric queues one housekeeping metric sample. Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (d *Downlink) PushMetric(id uint16, v float64) {
	d.mu.Lock()
	if !d.queues[PriHousekeeping].push(downRec{kind: RecMetric, id: id, val: v}) {
		d.dropped[PriHousekeeping]++
	}
	d.mu.Unlock()
}

// PushDump queues one flight-recorder dump notice on the incident
// channel. Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (d *Downlink) PushDump(rec DumpRecord) {
	w := wireDump{
		Frame:      int32(rec.Frame),
		Trigger:    TriggerCode(rec.Trigger),
		Spans:      uint16(rec.Spans),
		HashPrefix: hashPrefix(rec.Hash),
	}
	d.mu.Lock()
	if !d.queues[PriIncident].push(downRec{kind: RecDump, dump: w}) {
		d.dropped[PriIncident]++
	}
	d.mu.Unlock()
}

// recWireSize returns the encoded size of one record including its
// header.
//
//safexplain:hotpath
//safexplain:wcet
func recWireSize(kind RecordKind) int {
	switch kind {
	case RecSpan:
		return recHeaderLen + spanPayloadLen
	case RecSpanV2:
		return recHeaderLen + spanV2PayloadLen
	case RecMetric:
		return recHeaderLen + metricPayload
	case RecDump:
		return recHeaderLen + dumpPayloadLen
	}
	return recHeaderLen
}

// EmitFrame drains queued records — incident first, then events, then
// housekeeping, FIFO within each channel — into one telemetry frame of
// at most BytesPerFrame bytes, appended to the capture buffer. Records
// that do not fit this frame stay queued for the next. Returns the bytes
// emitted (0 when even the header does not fit the budget or the
// capture). Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (d *Downlink) EmitFrame(frame int) int {
	d.mu.Lock()
	budget := d.cfg.BytesPerFrame
	if avail := len(d.capture) - d.used; avail < budget {
		budget = avail
	}
	if budget < frameHeaderLen {
		d.dropFr++
		d.frames++
		d.mu.Unlock()
		return 0
	}
	start := d.used
	b := d.capture
	b[start] = wireMagic0
	b[start+1] = wireMagic1
	b[start+2] = wireVersion
	binary.LittleEndian.PutUint32(b[start+3:], uint32(int32(frame)))
	off := start + frameHeaderLen
	limit := start + budget
	count := 0
	//safexplain:bounded three priority channels, each draining a fixed-depth queue
	for p := int(numPriorities) - 1; p >= 0; p-- {
		q := &d.queues[p]
		//safexplain:bounded queue length is capped by the fixed QueueDepth ring
		for q.n > 0 {
			r := q.peek()
			size := recWireSize(r.kind)
			if off+size > limit || count >= maxFrameCount {
				break // head of line blocks; lower channels may still fit
			}
			b[off] = byte(r.kind)
			b[off+1] = byte(p)
			b[off+2] = byte(size - recHeaderLen)
			switch r.kind {
			case RecSpan:
				var sb [31]byte
				encodeTraceSpan(&sb, r.span)
				copy(b[off+recHeaderLen:], sb[:])
			case RecSpanV2:
				var sb [spanV2PayloadLen]byte
				encodeTraceSpanV2(&sb, r.span)
				copy(b[off+recHeaderLen:], sb[:])
			case RecMetric:
				binary.LittleEndian.PutUint16(b[off+recHeaderLen:], r.id)
				binary.LittleEndian.PutUint64(b[off+recHeaderLen+2:], math.Float64bits(r.val))
			case RecDump:
				binary.LittleEndian.PutUint32(b[off+recHeaderLen:], uint32(r.dump.Frame))
				b[off+recHeaderLen+4] = r.dump.Trigger
				binary.LittleEndian.PutUint16(b[off+recHeaderLen+5:], r.dump.Spans)
				binary.LittleEndian.PutUint64(b[off+recHeaderLen+7:], r.dump.HashPrefix)
			}
			off += size
			count++
			q.pop()
		}
	}
	binary.LittleEndian.PutUint16(b[start+7:], uint16(count))
	d.used = off
	d.frames++
	d.mu.Unlock()
	return off - start
}

// Capture returns a copy of the emitted telemetry stream so far — the
// ground-side view. Allocates; never call it per frame.
func (d *Downlink) Capture() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.capture[:d.used]...)
}

// CaptureLen returns the bytes captured so far.
func (d *Downlink) CaptureLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Frames returns the telemetry frames emitted.
func (d *Downlink) Frames() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frames
}

// Dropped returns the per-priority dropped-record counts and the frames
// dropped for capture exhaustion.
func (d *Downlink) Dropped() (perPriority [3]uint64, captureFrames uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped, d.dropFr
}

// Pending returns the records still queued per priority.
func (d *Downlink) Pending() [3]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out [3]int
	for i := range d.queues {
		out[i] = d.queues[i].n
	}
	return out
}

// BytesPerFrame returns the configured emit budget.
func (d *Downlink) BytesPerFrame() int { return d.cfg.BytesPerFrame }

// Hash returns the SHA-256 over the captured stream, hex-encoded — the
// ground-side evidence link.
func (d *Downlink) Hash() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	sum := sha256.Sum256(d.capture[:d.used])
	return hex.EncodeToString(sum[:])
}

// Describe returns a one-line summary suitable for evidence records.
func (d *Downlink) Describe() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "downlink: budget %d B/frame, %d frames, %d bytes captured, drops hk=%d ev=%d inc=%d",
		d.cfg.BytesPerFrame, d.frames, d.used,
		d.dropped[PriHousekeeping], d.dropped[PriEvent], d.dropped[PriIncident])
	return b.String()
}

// --- ground-side decoder (pure functions) ---

// ErrCorrupt reports a malformed downlink frame.
//
//safexplain:req REQ-DET
var ErrCorrupt = errors.New("obs: corrupt downlink frame")

// DownRecord is one decoded downlink record.
//
//safexplain:req REQ-XAI
type DownRecord struct {
	Kind RecordKind
	Pri  Priority

	Span TraceSpan // when Kind == RecSpan or RecSpanV2

	MetricID    uint16  // when Kind == RecMetric
	MetricValue float64 // when Kind == RecMetric

	Dump DumpSummary // when Kind == RecDump
}

// DumpSummary is the decoded form of a dump notice.
//
//safexplain:req REQ-XAI
type DumpSummary struct {
	Frame      int32
	Trigger    string
	Spans      int
	HashPrefix uint64
}

// DownFrame is one decoded telemetry frame.
//
//safexplain:req REQ-XAI
type DownFrame struct {
	Frame   int32
	Records []DownRecord
}

// PeekFrame reads just the frame index out of a telemetry frame header
// without decoding the records — the cheap probe a relay tier uses to
// stamp hop records with the trace the bytes belong to. ok is false
// when b does not start with a well-formed header.
//
//safexplain:req REQ-DET
func PeekFrame(b []byte) (frame int32, ok bool) {
	if len(b) < frameHeaderLen || b[0] != wireMagic0 || b[1] != wireMagic1 || b[2] != wireVersion {
		return 0, false
	}
	return int32(binary.LittleEndian.Uint32(b[3:])), true
}

// DecodeFrame decodes one telemetry frame from the head of b, returning
// the frame, the bytes consumed, and an error on corruption. It is a
// pure function: bounds-checked throughout, it never panics and never
// reads past the declared lengths (FuzzDownlinkDecode enforces this).
// Records of unknown kind are skipped via their length byte.
//
//safexplain:req REQ-DET REQ-XAI
func DecodeFrame(b []byte) (DownFrame, int, error) {
	frame, recs, n, err := DecodeFrameAppend(b, nil)
	return DownFrame{Frame: frame, Records: recs}, n, err
}

// DecodeFrameAppend is the allocation-conscious form of DecodeFrame: the
// frame's records are appended to dst and the extended slice returned, so
// a caller that reuses a scratch slice across frames — the fleet ground
// segment's per-shard ingest loop — decodes in the steady state without
// allocating. Semantics are otherwise identical to DecodeFrame: pure,
// bounds-checked, never panicking, unknown kinds length-skipped.
//
//safexplain:req REQ-DET REQ-XAI
func DecodeFrameAppend(b []byte, dst []DownRecord) (frame int32, recs []DownRecord, n int, err error) {
	recs = dst
	if len(b) < frameHeaderLen {
		return 0, recs, 0, fmt.Errorf("%w: %d bytes, need %d for the header", ErrCorrupt, len(b), frameHeaderLen)
	}
	if b[0] != wireMagic0 || b[1] != wireMagic1 {
		return 0, recs, 0, fmt.Errorf("%w: bad magic %#02x%02x", ErrCorrupt, b[0], b[1])
	}
	if b[2] != wireVersion {
		return 0, recs, 0, fmt.Errorf("%w: unknown version %d", ErrCorrupt, b[2])
	}
	frame = int32(binary.LittleEndian.Uint32(b[3:]))
	count := int(binary.LittleEndian.Uint16(b[7:]))
	if count > maxFrameCount {
		return frame, recs, 0, fmt.Errorf("%w: record count %d exceeds bound %d", ErrCorrupt, count, maxFrameCount)
	}
	off := frameHeaderLen
	for i := 0; i < count; i++ {
		if len(b)-off < recHeaderLen {
			return frame, recs, 0, fmt.Errorf("%w: truncated record header at offset %d", ErrCorrupt, off)
		}
		kind := RecordKind(b[off])
		pri := Priority(b[off+1])
		plen := int(b[off+2])
		off += recHeaderLen
		if len(b)-off < plen {
			return frame, recs, 0, fmt.Errorf("%w: truncated payload at offset %d (need %d)", ErrCorrupt, off, plen)
		}
		payload := b[off : off+plen]
		off += plen
		rec := DownRecord{Kind: kind, Pri: pri}
		switch kind {
		case RecSpan:
			if plen != spanPayloadLen {
				return frame, recs, 0, fmt.Errorf("%w: span payload %d bytes, want %d", ErrCorrupt, plen, spanPayloadLen)
			}
			rec.Span = decodeTraceSpan(payload)
		case RecSpanV2:
			if plen != spanV2PayloadLen {
				return frame, recs, 0, fmt.Errorf("%w: span v2 payload %d bytes, want %d", ErrCorrupt, plen, spanV2PayloadLen)
			}
			rec.Span = decodeTraceSpanV2(payload)
		case RecMetric:
			if plen != metricPayload {
				return frame, recs, 0, fmt.Errorf("%w: metric payload %d bytes, want %d", ErrCorrupt, plen, metricPayload)
			}
			rec.MetricID = binary.LittleEndian.Uint16(payload)
			rec.MetricValue = math.Float64frombits(binary.LittleEndian.Uint64(payload[2:]))
		case RecDump:
			if plen != dumpPayloadLen {
				return frame, recs, 0, fmt.Errorf("%w: dump payload %d bytes, want %d", ErrCorrupt, plen, dumpPayloadLen)
			}
			rec.Dump = DumpSummary{
				Frame:      int32(binary.LittleEndian.Uint32(payload)),
				Trigger:    TriggerName(payload[4]),
				Spans:      int(binary.LittleEndian.Uint16(payload[5:])),
				HashPrefix: binary.LittleEndian.Uint64(payload[7:]),
			}
		default:
			continue // unknown kind: length-skipped, not decoded
		}
		recs = append(recs, rec)
	}
	return frame, recs, off, nil
}

// DecodeStream decodes a captured telemetry stream into its frames.
// Trailing garbage or a corrupt frame yields an error alongside the
// frames decoded so far.
//
//safexplain:req REQ-DET REQ-XAI
func DecodeStream(b []byte) ([]DownFrame, error) {
	var frames []DownFrame
	off := 0
	for off < len(b) {
		f, n, err := DecodeFrame(b[off:])
		if err != nil {
			return frames, fmt.Errorf("frame %d at offset %d: %w", len(frames), off, err)
		}
		frames = append(frames, f)
		off += n
	}
	return frames, nil
}
