package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// traceScratch is the fixed per-frame span budget: the operate path emits
// at most frame root + infer + supervisor + fdir + recovery + vote +
// deadline + drift spans, so 16 leaves headroom for future stages without
// any dynamic growth.
const traceScratch = 16

// SpanRef addresses a span within the currently open frame so later
// stages can link their cause (verdict → pattern decision → FDIR
// transition). NoSpan marks "no cause" / "no open frame".
//
//safexplain:req REQ-XAI
type SpanRef int16

// NoSpan is the invalid SpanRef.
//
//safexplain:req REQ-XAI
const NoSpan SpanRef = -1

// TraceSpan is one node of a per-frame causal span tree. All fields are
// fixed-size scalars so recording never allocates. Parent is the
// structural tree edge (every non-root span's parent is the frame root);
// Cause is the causal edge (the span whose outcome triggered this one),
// which is what incident reconstruction walks.
//
//safexplain:req REQ-DET REQ-XAI
type TraceSpan struct {
	Seq    uint64 // global ordinal across frames (monotonic across wraps)
	Frame  int32  // frame index
	Idx    int16  // position within the frame (0 = root)
	Parent int16  // structural parent Idx (-1 for the root)
	Cause  int16  // causal predecessor Idx (-1 when none)
	Stage  Stage
	Code   int32
	Value  float64

	// Distributed-tracing v2 fields. ID is the frame's deterministic
	// 8-byte TraceID (unit<<32 | frame — see TraceID); Begin is the
	// injected-clock tick the span started at and Dur how many ticks it
	// ran. All three stay zero on a tracer with no clock and no unit, and
	// such spans travel the wire in the original 31-byte v1 record, so
	// every pre-v2 golden stays byte-exact.
	ID    uint64
	Begin uint64
	Dur   uint64
}

// TraceID composes the deterministic 8-byte trace identity of one frame
// on one unit: the unit id in the high 32 bits, the frame sequence in
// the low 32. The zero value (unit 0, frame 0) is reserved as
// "untraced". The composition is pure arithmetic, so any tier can
// recover (unit, frame) from an ID without a lookup table and the ID
// can be hashed into the evidence chain like any other scalar.
//
//safexplain:req REQ-XAI
//safexplain:hotpath
//safexplain:wcet
func TraceID(unit uint32, frame int32) uint64 {
	return uint64(unit)<<32 | uint64(uint32(frame))
}

// TraceIDUnit recovers the unit id from a TraceID.
//
//safexplain:req REQ-XAI
func TraceIDUnit(id uint64) uint32 { return uint32(id >> 32) }

// TraceIDFrame recovers the frame sequence from a TraceID.
//
//safexplain:req REQ-XAI
func TraceIDFrame(id uint64) int32 { return int32(uint32(id)) }

// FormatTraceID renders a TraceID in its canonical form: 16 lowercase
// hex digits, zero-padded — fixed width so lexicographic order equals
// numeric order in canonical JSON.
//
//safexplain:req REQ-XAI
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses the canonical 16-hex-digit form (a shorter or
// 0x-prefixed hex string is accepted for operator convenience).
//
//safexplain:req REQ-XAI
func ParseTraceID(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "0x")
	if s == "" || len(s) > 16 {
		return 0, fmt.Errorf("obs: trace id %q: want up to 16 hex digits", s)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("obs: trace id %q: bad hex digit %q", s, c)
		}
		v = v<<4 | d
	}
	return v, nil
}

// NewCounterClock returns a deterministic monotonic clock: each call
// returns the previous value plus one, starting at 1. Tests and
// replay-deterministic experiments inject it where production injects a
// wall-derived tick source, so span timings — and therefore every trace
// bundle — are byte-exact across runs. The closure is safe for
// concurrent use and never allocates after construction.
//
//safexplain:req REQ-DET
func NewCounterClock() func() uint64 {
	var c atomicTick
	return c.next
}

// atomicTick is the counter behind NewCounterClock, kept as a named
// type so the returned method value captures one heap cell up front and
// the per-call path is a single atomic add — one counter clock may be
// shared across many tracers and fleet nodes.
type atomicTick struct{ v atomic.Uint64 }

func (t *atomicTick) next() uint64 { return t.v.Add(1) }

// TraceCtx is the causal frame tracer: a statically allocated scratch
// tree filled during one frame and committed to a fixed ring at frame
// end. The scratch-then-commit design keeps the per-frame spans
// contiguous in the ring (a downlinked frame is self-contained) and
// makes the record path a handful of struct stores — zero allocations,
// enforced by TestTraceRecordPathZeroAllocs.
//
//safexplain:req REQ-DET REQ-XAI
type TraceCtx struct {
	mu       sync.Mutex
	scratch  [traceScratch]TraceSpan
	n        int   // scratch spans in the open frame
	open     bool  // a frame is open
	frame    int32 // the open frame index
	ring     []TraceSpan
	next     uint64 // total spans ever committed
	frames   uint64 // frames committed
	overflow uint64 // spans dropped because scratch was full
	down     *Downlink

	// Distributed-tracing v2 state: the unit id folded into every
	// frame's TraceID and the injected monotonic tick source. Both stay
	// zero-valued by default, which disables v2 stamping entirely — the
	// clock is injected (never read from the ambient environment) so the
	// package keeps its determinism contract.
	unit  uint32
	clock func() uint64
}

// NewTraceCtx returns a tracer whose ring holds the last capacity spans
// (minimum traceScratch, so one full frame always fits).
//
//safexplain:req REQ-DET
func NewTraceCtx(capacity int) *TraceCtx {
	if capacity < traceScratch {
		capacity = traceScratch
	}
	return &TraceCtx{ring: make([]TraceSpan, capacity)}
}

// Attach routes committed spans into a downlink. Call before operating.
func (t *TraceCtx) Attach(d *Downlink) {
	t.mu.Lock()
	t.down = d
	t.mu.Unlock()
}

// SetUnit sets the unit id folded into every subsequent frame's TraceID.
// Call before operating; frames already open keep their identity.
func (t *TraceCtx) SetUnit(unit uint32) {
	t.mu.Lock()
	t.unit = unit
	t.mu.Unlock()
}

// SetClock injects the monotonic tick source stamped into span
// begin/duration fields. Production injects a wall-derived reader;
// deterministic tests inject NewCounterClock. A nil clock (the default)
// disables timing capture, keeping v1 byte-exact behaviour.
func (t *TraceCtx) SetClock(clock func() uint64) {
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// TraceID returns the open frame's trace identity, or 0 when no frame
// is open. Zero-allocation — the exemplar record path calls it per
// observation.
//
//safexplain:hotpath
//safexplain:wcet
func (t *TraceCtx) TraceID() uint64 {
	t.mu.Lock()
	id := uint64(0)
	if t.open {
		id = TraceID(t.unit, t.frame)
	}
	t.mu.Unlock()
	return id
}

// now reads the injected clock, or 0 with none set. Caller holds the
// mutex.
//
//safexplain:hotpath
//safexplain:wcet
func (t *TraceCtx) now() uint64 {
	if t.clock == nil {
		return 0
	}
	//safexplain:dynamic injected tick source: counter clock in tests, wall-derived reader in production; both are constant-time and allocation-free
	return t.clock()
}

// Begin opens a frame and records its root span (StageFrame). If a frame
// is still open — an End was missed — it is committed first so spans are
// never silently lost. Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (t *TraceCtx) Begin(frame int) {
	t.mu.Lock()
	if t.open {
		t.commit()
	}
	t.open = true
	t.frame = int32(frame)
	t.n = 1
	t.scratch[0] = TraceSpan{
		Frame: int32(frame), Idx: 0, Parent: -1, Cause: -1, Stage: StageFrame,
		Begin: t.now(),
	}
	t.mu.Unlock()
}

// Child records one stage span under the open frame root, causally linked
// to cause (NoSpan for none), and returns its ref for later links. With
// no open frame, or with the scratch tree full, the span is counted as
// overflow and NoSpan is returned — the record path never fails, it
// degrades. Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (t *TraceCtx) Child(stage Stage, code int32, value float64, cause SpanRef) SpanRef {
	t.mu.Lock()
	if !t.open || t.n >= traceScratch {
		if t.open {
			t.overflow++
		}
		t.mu.Unlock()
		return NoSpan
	}
	idx := int16(t.n)
	c := int16(cause)
	if cause < 0 || int(cause) >= t.n {
		c = -1
	}
	// Stage spans run sequentially under the frame root, so the tick
	// that starts this span also finalizes the previous sibling's
	// duration — one clock read per stage boundary.
	now := t.now()
	if t.n > 1 {
		prev := &t.scratch[t.n-1]
		prev.Dur = now - prev.Begin
	}
	t.scratch[t.n] = TraceSpan{
		Frame: t.frame, Idx: idx, Parent: 0, Cause: c, Stage: stage,
		Code: code, Value: value, Begin: now,
	}
	t.n++
	t.mu.Unlock()
	return SpanRef(idx)
}

// SetCode patches the code of a span in the open frame — the infer span
// is recorded before the pattern decides which class is delivered, then
// patched. No-op on invalid refs or closed frames. Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (t *TraceCtx) SetCode(ref SpanRef, code int32) {
	t.mu.Lock()
	if t.open && ref > 0 && int(ref) < t.n {
		t.scratch[ref].Code = code
	}
	t.mu.Unlock()
}

// Root returns the open frame's root span ref (NoSpan when no frame is
// open). Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (t *TraceCtx) Root() SpanRef {
	t.mu.Lock()
	open := t.open
	t.mu.Unlock()
	if open {
		return 0
	}
	return NoSpan
}

// End commits the open frame's spans to the ring (and, when a downlink is
// attached, into its priority queues). Zero-allocation.
//
//safexplain:hotpath
//safexplain:wcet
func (t *TraceCtx) End() {
	t.mu.Lock()
	if t.open {
		t.commit()
	}
	t.mu.Unlock()
}

// commit assigns global ordinals and copies the scratch tree into the
// ring. Caller holds the mutex.
//
//safexplain:hotpath
//safexplain:wcet
func (t *TraceCtx) commit() {
	// Frame end: one clock read finalizes the last stage span and the
	// root, and the frame's TraceID is stamped onto every span — commit
	// is the single point where a span becomes externally visible, so
	// identity and timing are always consistent within a frame.
	now := t.now()
	if t.n > 1 {
		last := &t.scratch[t.n-1]
		last.Dur = now - last.Begin
	}
	t.scratch[0].Dur = now - t.scratch[0].Begin
	id := uint64(0)
	if t.unit != 0 || t.clock != nil {
		id = TraceID(t.unit, t.frame)
	}
	//safexplain:bounded scratch span count is capped by the fixed traceScratch array
	for i := 0; i < t.n; i++ {
		t.scratch[i].Seq = t.next + uint64(i)
		t.scratch[i].ID = id
		t.ring[(t.next+uint64(i))%uint64(len(t.ring))] = t.scratch[i]
		if t.down != nil {
			t.down.PushSpan(t.scratch[i])
		}
	}
	t.next += uint64(t.n)
	t.frames++
	t.n = 0
	t.open = false
}

// Cap returns the ring capacity.
func (t *TraceCtx) Cap() int { return len(t.ring) }

// Total returns the number of spans ever committed.
func (t *TraceCtx) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Frames returns the number of frames committed.
func (t *TraceCtx) Frames() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.frames
}

// Overflow returns the spans dropped because a frame exceeded the
// scratch budget.
func (t *TraceCtx) Overflow() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overflow
}

// Len returns the number of spans currently held in the ring.
func (t *TraceCtx) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.held()
}

func (t *TraceCtx) held() int {
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Spans returns the held spans oldest-first — the dump path. Allocates;
// never call it per frame.
func (t *TraceCtx) Spans() []TraceSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.held()
	out := make([]TraceSpan, 0, n)
	start := t.next - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, t.ring[(start+i)%uint64(len(t.ring))])
	}
	return out
}

// Hash returns the SHA-256 over the held spans in order (fixed binary
// encoding), hex-encoded. Like Flight.Hash, this is what links the trace
// ring into the evidence chain: the chained record proves which causal
// history a downlinked reconstruction claims. The hash always covers
// the v2 encoding — a v1-only span encodes with 24 zero trailing bytes,
// so the hash stays deterministic whether or not timing was captured.
func (t *TraceCtx) Hash() string {
	h := sha256.New()
	var buf [spanV2PayloadLen]byte
	for _, s := range t.Spans() {
		encodeTraceSpanV2(&buf, s)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// encodeTraceSpan writes the canonical 31-byte binary encoding of one
// span — shared by the ring hash and the downlink wire format, so a
// ground-side re-hash of a complete downlink matches the on-board ring.
//
//safexplain:hotpath
//safexplain:wcet
func encodeTraceSpan(buf *[31]byte, s TraceSpan) {
	binary.LittleEndian.PutUint64(buf[0:], s.Seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(s.Frame))
	binary.LittleEndian.PutUint16(buf[12:], uint16(s.Idx))
	binary.LittleEndian.PutUint16(buf[14:], uint16(s.Parent))
	binary.LittleEndian.PutUint16(buf[16:], uint16(s.Cause))
	buf[18] = byte(s.Stage)
	binary.LittleEndian.PutUint32(buf[19:], uint32(s.Code))
	binary.LittleEndian.PutUint64(buf[23:], math.Float64bits(s.Value))
}

// decodeTraceSpan is the inverse of encodeTraceSpan.
func decodeTraceSpan(b []byte) TraceSpan {
	return TraceSpan{
		Seq:    binary.LittleEndian.Uint64(b[0:]),
		Frame:  int32(binary.LittleEndian.Uint32(b[8:])),
		Idx:    int16(binary.LittleEndian.Uint16(b[12:])),
		Parent: int16(binary.LittleEndian.Uint16(b[14:])),
		Cause:  int16(binary.LittleEndian.Uint16(b[16:])),
		Stage:  Stage(b[18]),
		Code:   int32(binary.LittleEndian.Uint32(b[19:])),
		Value:  math.Float64frombits(binary.LittleEndian.Uint64(b[23:])),
	}
}

// encodeTraceSpanV2 writes the canonical 55-byte v2 encoding: the v1
// record followed by TraceID, begin tick and duration ticks, all
// little-endian. The v1 prefix is byte-identical to encodeTraceSpan, so
// ground-side tooling can treat a v2 record as a v1 record plus a fixed
// trailer.
//
//safexplain:hotpath
//safexplain:wcet
func encodeTraceSpanV2(buf *[spanV2PayloadLen]byte, s TraceSpan) {
	binary.LittleEndian.PutUint64(buf[0:], s.Seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(s.Frame))
	binary.LittleEndian.PutUint16(buf[12:], uint16(s.Idx))
	binary.LittleEndian.PutUint16(buf[14:], uint16(s.Parent))
	binary.LittleEndian.PutUint16(buf[16:], uint16(s.Cause))
	buf[18] = byte(s.Stage)
	binary.LittleEndian.PutUint32(buf[19:], uint32(s.Code))
	binary.LittleEndian.PutUint64(buf[23:], math.Float64bits(s.Value))
	binary.LittleEndian.PutUint64(buf[31:], s.ID)
	binary.LittleEndian.PutUint64(buf[39:], s.Begin)
	binary.LittleEndian.PutUint64(buf[47:], s.Dur)
}

// decodeTraceSpanV2 is the inverse of encodeTraceSpanV2.
func decodeTraceSpanV2(b []byte) TraceSpan {
	s := decodeTraceSpan(b)
	s.ID = binary.LittleEndian.Uint64(b[31:])
	s.Begin = binary.LittleEndian.Uint64(b[39:])
	s.Dur = binary.LittleEndian.Uint64(b[47:])
	return s
}

// Dump renders the held spans as an indented causal tree, newest frame
// last.
func (t *TraceCtx) Dump() string {
	spans := t.Spans()
	var b strings.Builder
	fmt.Fprintf(&b, "trace context: %d/%d spans held (%d committed over %d frames, %d overflowed), hash %.12s…\n",
		len(spans), t.Cap(), t.Total(), t.Frames(), t.Overflow(), t.Hash())
	for _, s := range spans {
		indent := "  "
		if s.Idx > 0 {
			indent = "    "
		}
		cause := ""
		if s.Cause >= 0 {
			cause = fmt.Sprintf(" cause=%d", s.Cause)
		}
		fmt.Fprintf(&b, "%s%6d frame=%-5d %-14s code=%-4d value=%g%s\n",
			indent, s.Seq, s.Frame, s.Stage, s.Code, s.Value, cause)
	}
	return b.String()
}
