package obs

import (
	"sync"
	"testing"
)

// traceOneFrame records a representative operate-path frame: root,
// infer, supervisor verdict, FDIR verdict, vote — the chain Step wires.
func traceOneFrame(o *Obs, frame int, anoms int32) {
	o.TraceBegin(frame)
	infer := o.TraceChild(StageInfer, -1, 0, o.TraceRoot())
	sup := o.TraceChild(StageSupervisor, anoms, 0, infer)
	fd := o.TraceChild(StageFDIR, 0, 0, sup)
	o.TraceSetCode(infer, 7)
	o.TraceChild(StageVote, 0, 7, fd)
	o.TraceEnd(frame)
}

func TestTraceFrameTreeAndCauseLinks(t *testing.T) {
	o := New(Config{Name: "trace"})
	traceOneFrame(o, 0, 2)

	spans := o.Trace.Spans()
	if len(spans) != 5 {
		t.Fatalf("held %d spans, want 5", len(spans))
	}
	if spans[0].Stage != StageFrame || spans[0].Idx != 0 || spans[0].Parent != -1 {
		t.Fatalf("root span malformed: %+v", spans[0])
	}
	// The infer span's code was patched after the vote.
	if spans[1].Stage != StageInfer || spans[1].Code != 7 {
		t.Fatalf("infer span not patched: %+v", spans[1])
	}
	// Causal chain: vote ← fdir ← supervisor ← infer ← (root has none).
	wantCause := []int16{-1, 0, 1, 2, 3}
	for i, s := range spans {
		if s.Cause != wantCause[i] {
			t.Errorf("span %d (%s) cause = %d, want %d", i, s.Stage, s.Cause, wantCause[i])
		}
		if s.Frame != 0 {
			t.Errorf("span %d frame = %d, want 0", i, s.Frame)
		}
		if s.Seq != uint64(i) {
			t.Errorf("span %d seq = %d, want %d", i, s.Seq, i)
		}
	}
	if o.Trace.Frames() != 1 {
		t.Fatalf("frames = %d, want 1", o.Trace.Frames())
	}
}

func TestTraceChildOutsideFrameIsNoop(t *testing.T) {
	o := New(Config{Name: "trace"})
	if ref := o.TraceChild(StageInfer, 1, 0, NoSpan); ref != NoSpan {
		t.Fatalf("child outside a frame returned %d, want NoSpan", ref)
	}
	if o.TraceRoot() != NoSpan {
		t.Fatal("root outside a frame should be NoSpan")
	}
	if o.Trace.Total() != 0 || o.Trace.Overflow() != 0 {
		t.Fatalf("stray spans recorded: total=%d overflow=%d", o.Trace.Total(), o.Trace.Overflow())
	}
}

func TestTraceScratchOverflowCounted(t *testing.T) {
	tc := NewTraceCtx(64)
	tc.Begin(0)
	for i := 0; i < traceScratch+5; i++ {
		tc.Child(StageInfer, int32(i), 0, NoSpan)
	}
	tc.End()
	if tc.Overflow() != 6 { // root takes one slot; 15 children fit
		t.Fatalf("overflow = %d, want 6", tc.Overflow())
	}
	if tc.Total() != traceScratch {
		t.Fatalf("total = %d, want %d", tc.Total(), traceScratch)
	}
}

func TestTraceBeginCommitsOpenFrame(t *testing.T) {
	tc := NewTraceCtx(64)
	tc.Begin(0)
	tc.Child(StageInfer, 1, 0, 0)
	tc.Begin(1) // missed End: frame 0 must still commit
	tc.End()
	spans := tc.Spans()
	if len(spans) != 3 {
		t.Fatalf("held %d spans, want 3 (2 from frame 0, 1 root from frame 1)", len(spans))
	}
	if spans[0].Frame != 0 || spans[2].Frame != 1 {
		t.Fatalf("frames not committed in order: %+v", spans)
	}
}

func TestTraceRingWrapKeepsNewest(t *testing.T) {
	tc := NewTraceCtx(traceScratch) // minimum: exactly one frame's worth
	for f := 0; f < 10; f++ {
		tc.Begin(f)
		tc.Child(StageInfer, int32(f), 0, 0)
		tc.End()
	}
	spans := tc.Spans()
	if len(spans) != traceScratch {
		t.Fatalf("held %d, want %d", len(spans), traceScratch)
	}
	// The newest span must be from the last frame.
	if last := spans[len(spans)-1]; last.Frame != 9 {
		t.Fatalf("newest span frame = %d, want 9", last.Frame)
	}
	if tc.Total() != 20 { // 2 spans per frame × 10 frames
		t.Fatalf("total = %d, want 20", tc.Total())
	}
}

func TestTraceHashDeterministicAndSensitive(t *testing.T) {
	mk := func(code int32) *TraceCtx {
		tc := NewTraceCtx(64)
		tc.Begin(0)
		tc.Child(StageInfer, code, 0.5, 0)
		tc.End()
		return tc
	}
	a, b, c := mk(3), mk(3), mk(4)
	if a.Hash() != b.Hash() {
		t.Fatal("identical histories hash differently")
	}
	if a.Hash() == c.Hash() {
		t.Fatal("different histories hash identically")
	}
}

// TestTraceRecordPathZeroAllocs holds the trace path to the same bar as
// the flight recorder: begin + children + patch + end, 0 allocs/op.
func TestTraceRecordPathZeroAllocs(t *testing.T) {
	o := New(Config{Name: "alloc-test"})
	frame := 0
	allocs := testing.AllocsPerRun(200, func() {
		traceOneFrame(o, frame, 1)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("trace record path allocates: %v allocs/op", allocs)
	}
}

// TestTraceRecordPathZeroAllocsWithDownlink includes queueing and frame
// emission — the full telemetry path must also be allocation-free.
func TestTraceRecordPathZeroAllocsWithDownlink(t *testing.T) {
	o := New(Config{Name: "alloc-test"})
	o.AttachDownlink(NewDownlink(DownlinkConfig{BytesPerFrame: 512}))
	frame := 0
	allocs := testing.AllocsPerRun(200, func() {
		traceOneFrame(o, frame, 1)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("trace+downlink record path allocates: %v allocs/op", allocs)
	}
}

func TestTraceNilObsIsSafe(t *testing.T) {
	var o *Obs
	o.TraceBegin(0)
	if ref := o.TraceChild(StageInfer, 0, 0, NoSpan); ref != NoSpan {
		t.Fatal("nil obs TraceChild should return NoSpan")
	}
	o.TraceSetCode(NoSpan, 1)
	if o.TraceRoot() != NoSpan {
		t.Fatal("nil obs TraceRoot should return NoSpan")
	}
	o.TraceEnd(0)
	o.AttachDownlink(nil)
}

func TestTraceConcurrentFrames(t *testing.T) {
	o := New(Config{Name: "race", TraceCapacity: 128})
	var wg sync.WaitGroup
	const workers, per = 4, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				traceOneFrame(o, i, int32(w))
			}
		}(w)
	}
	wg.Wait()
	if got := o.Trace.Frames(); got < workers*per {
		// Interleaved Begins may auto-commit partial frames, but every
		// Begin eventually commits, so at least workers*per frames.
		t.Fatalf("frames = %d, want >= %d", got, workers*per)
	}
}

// BenchmarkTraceRecordPath proves the acceptance claim: the full
// per-frame causal record path (root + infer + supervisor + FDIR + vote,
// code patch, commit, downlink push + frame emit) runs at 0 allocs/op.
func BenchmarkTraceRecordPath(b *testing.B) {
	o := New(Config{Name: "bench"})
	o.AttachDownlink(NewDownlink(DownlinkConfig{BytesPerFrame: 256, CaptureBytes: 1 << 26}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceOneFrame(o, i, 1)
	}
}
