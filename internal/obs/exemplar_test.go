package obs

import (
	"strings"
	"testing"
)

// exemplarRegistry builds a registry with one histogram whose bounds
// make exemplar→bucket placement easy to assert.
func exemplarRegistry() (*Registry, *Histogram) {
	r := NewRegistry("extest")
	h := r.Histogram("lat_us", "latency", 10, 100, 1000)
	return r, h
}

// TestExemplarRetention pins the worst-case-since-scrape rule: the
// largest value wins, ties keep the lower TraceID (order-independent),
// smaller values never displace the holder, and the zero TraceID is
// "untraced" and never retained.
func TestExemplarRetention(t *testing.T) {
	_, h := exemplarRegistry()

	h.ObserveExemplar(50, 7)
	if v, id, ok := h.TakeExemplar(); !ok || v != 50 || id != 7 {
		t.Fatalf("first exemplar = (%v,%d,%v), want (50,7,true)", v, id, ok)
	}

	// Higher value displaces; lower value does not.
	h.ObserveExemplar(50, 7)
	h.ObserveExemplar(200, 9)
	h.ObserveExemplar(120, 3)
	if v, id, ok := h.TakeExemplar(); !ok || v != 200 || id != 9 {
		t.Fatalf("worst-case exemplar = (%v,%d,%v), want (200,9,true)", v, id, ok)
	}

	// Tie keeps the lower TraceID regardless of arrival order.
	h.ObserveExemplar(80, 12)
	h.ObserveExemplar(80, 4)
	h.ObserveExemplar(80, 30)
	if _, id, _ := h.TakeExemplar(); id != 4 {
		t.Fatalf("tie retained id %d, want lower id 4", id)
	}

	// The zero TraceID means untraced: the observation counts, the
	// exemplar does not.
	before := h.Count()
	h.ObserveExemplar(999, 0)
	if h.Count() != before+1 {
		t.Fatal("ObserveExemplar(v, 0) did not record the observation")
	}
	if _, _, ok := h.TakeExemplar(); ok {
		t.Fatal("zero TraceID was retained as an exemplar")
	}
}

// TestTakeExemplarResets pins take-with-reset scrape semantics: each
// snapshot interval carries only its own worst case.
func TestTakeExemplarResets(t *testing.T) {
	_, h := exemplarRegistry()
	h.ObserveExemplar(300, 5)
	if _, _, ok := h.TakeExemplar(); !ok {
		t.Fatal("exemplar lost before the first take")
	}
	if v, id, ok := h.TakeExemplar(); ok || v != 0 || id != 0 {
		t.Fatalf("second take = (%v,%d,%v), want empty", v, id, ok)
	}
	// A fresh interval starts clean: a smaller value now wins.
	h.ObserveExemplar(1, 42)
	if v, id, ok := h.TakeExemplar(); !ok || v != 1 || id != 42 {
		t.Fatalf("post-reset exemplar = (%v,%d,%v), want (1,42,true)", v, id, ok)
	}
}

// TestExemplarNilHistogram extends the nil-receiver guarantees to the
// exemplar path.
func TestExemplarNilHistogram(t *testing.T) {
	var h *Histogram
	h.ObserveExemplar(1, 1) // must not panic
	if v, id, ok := h.TakeExemplar(); ok || v != 0 || id != 0 {
		t.Fatalf("nil TakeExemplar = (%v,%d,%v), want empty", v, id, ok)
	}
}

// TestSnapshotTakesExemplar checks Registry.Snapshot consumes the
// retained exemplar — present on the scrape that observed it, absent on
// the next — and formats the TraceID canonically.
func TestSnapshotTakesExemplar(t *testing.T) {
	r, h := exemplarRegistry()
	id := TraceID(7, 5)
	h.ObserveExemplar(42, id)

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	ex := snap.Histograms[0].Exemplar
	if ex == nil {
		t.Fatal("snapshot dropped the exemplar")
	}
	if ex.Value != 42 || ex.TraceID != FormatTraceID(id) {
		t.Fatalf("exemplar = %+v, want value 42 trace %s", ex, FormatTraceID(id))
	}
	if next := r.Snapshot(); next.Histograms[0].Exemplar != nil {
		t.Fatalf("exemplar survived into the next scrape: %+v", next.Histograms[0].Exemplar)
	}
}

// TestExemplarMerge pins cross-snapshot merge semantics: max value
// wins, ties keep the lexically lower TraceID, and the result is
// independent of merge order.
func TestExemplarMerge(t *testing.T) {
	build := func(v float64, id uint64) Snapshot {
		r, h := exemplarRegistry()
		h.ObserveExemplar(v, id)
		return r.Snapshot()
	}
	a, b := build(100, 9), build(250, 3)

	m1 := a.CloneMetrics()
	if err := m1.Merge(b); err != nil {
		t.Fatal(err)
	}
	m2 := b.CloneMetrics()
	if err := m2.Merge(a); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Snapshot{m1, m2} {
		ex := m.Histograms[0].Exemplar
		if ex == nil || ex.Value != 250 || ex.TraceID != FormatTraceID(3) {
			t.Fatalf("merged exemplar = %+v, want (250, %s)", ex, FormatTraceID(3))
		}
	}

	// Tie: the lower TraceID survives either merge order.
	c, d := build(100, 20), build(100, 6)
	mc := c.CloneMetrics()
	if err := mc.Merge(d); err != nil {
		t.Fatal(err)
	}
	md := d.CloneMetrics()
	if err := md.Merge(c); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Snapshot{mc, md} {
		if ex := m.Histograms[0].Exemplar; ex == nil || ex.TraceID != FormatTraceID(6) {
			t.Fatalf("tie merge exemplar = %+v, want trace %s", ex, FormatTraceID(6))
		}
	}
}

// TestOpenMetricsExemplarPlacement checks the exemplar annotates the
// first bucket whose bound covers its value — and the +Inf bucket when
// the value exceeds every bound — while staying off every other line.
func TestOpenMetricsExemplarPlacement(t *testing.T) {
	cases := []struct {
		value      float64
		wantBucket string
	}{
		{5, `le="10"`},
		{42, `le="100"`},
		{5000, `le="+Inf"`},
	}
	for _, tc := range cases {
		r, h := exemplarRegistry()
		h.ObserveExemplar(tc.value, TraceID(3, 1))
		body := r.Snapshot().OpenMetrics()

		var annotated []string
		for _, line := range strings.Split(body, "\n") {
			if strings.Contains(line, "# {") {
				annotated = append(annotated, line)
			}
		}
		if len(annotated) != 1 {
			t.Fatalf("value %v: %d annotated lines, want 1:\n%s", tc.value, len(annotated), body)
		}
		if !strings.Contains(annotated[0], tc.wantBucket) {
			t.Fatalf("value %v: exemplar on %q, want bucket %s", tc.value, annotated[0], tc.wantBucket)
		}
		want := `# {trace_id="` + FormatTraceID(TraceID(3, 1)) + `"}`
		if !strings.Contains(annotated[0], want) {
			t.Fatalf("value %v: exemplar labelset missing %q in %q", tc.value, want, annotated[0])
		}
	}
}

// TestOpenMetricsConformance runs the OpenMetrics linter over a fully
// populated exposition — counters, gauges, histograms with exemplars —
// and pins the counter _total family/sample split and EOF marker.
func TestOpenMetricsConformance(t *testing.T) {
	r := NewRegistry("omtest")
	r.Counter("frames_total", "frames").Add(3)
	r.Gauge("health", "health").Set(1)
	h := r.Histogram("lat_us", "latency", 10, 100)
	h.ObserveExemplar(42, TraceID(1, 1))

	body := r.Snapshot().OpenMetrics()
	if issues := LintOpenMetrics(body); len(issues) != 0 {
		t.Fatalf("OpenMetrics exposition fails lint:\n%s\n---\n%s", strings.Join(issues, "\n"), body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", body)
	}
	// Counter family declared WITHOUT _total, sample WITH it.
	if !strings.Contains(body, "# TYPE safexplain_frames counter") {
		t.Fatalf("counter family not trimmed of _total:\n%s", body)
	}
	if !strings.Contains(body, "safexplain_frames_total{system=\"omtest\"} 3") {
		t.Fatalf("counter sample lost its _total suffix:\n%s", body)
	}
	// The composable body form must be the same text minus the EOF.
	if got := r.Snapshot().OpenMetricsBody(); strings.Contains(got, "# EOF") {
		t.Fatalf("OpenMetricsBody carries an EOF marker:\n%s", got)
	}
}

// TestLintOpenMetricsRejects feeds the linter known-bad expositions so
// the oracle itself stays honest.
func TestLintOpenMetricsRejects(t *testing.T) {
	good := "# HELP m_lat latency\n# TYPE m_lat histogram\n" +
		`m_lat_bucket{le="10"} 1` + "\n" +
		`m_lat_bucket{le="+Inf"} 1` + "\n" +
		"m_lat_sum 5\nm_lat_count 1\n# EOF\n"
	if issues := LintOpenMetrics(good); len(issues) != 0 {
		t.Fatalf("baseline exposition must lint clean: %v", issues)
	}
	cases := []struct {
		name, text string
	}{
		{"missing EOF", "# HELP m_c c\n# TYPE m_c counter\nm_c_total 1\n"},
		{"counter family with _total",
			"# HELP m_c_total c\n# TYPE m_c_total counter\nm_c_total 1\n# EOF\n"},
		{"counter sample without _total",
			"# HELP m_c c\n# TYPE m_c counter\nm_c 1\n# EOF\n"},
		{"exemplar on non-bucket line",
			"# HELP m_c c\n# TYPE m_c counter\n" +
				`m_c_total 1 # {trace_id="0000000000000001"} 1` + "\n# EOF\n"},
		{"exemplar without value", "# HELP m_lat latency\n# TYPE m_lat histogram\n" +
			`m_lat_bucket{le="10"} 1 # ` + "\n" +
			`m_lat_bucket{le="+Inf"} 1` + "\n" +
			"m_lat_sum 5\nm_lat_count 1\n# EOF\n"},
	}
	for _, tc := range cases {
		if issues := LintOpenMetrics(tc.text); len(issues) == 0 {
			t.Errorf("%s: linter accepted a bad exposition", tc.name)
		}
	}
}

// TestObserveExemplarZeroAlloc proves the exemplar record path stays
// allocation-free — it sits inside the per-frame hotpath.
func TestObserveExemplarZeroAlloc(t *testing.T) {
	_, h := exemplarRegistry()
	id := TraceID(7, 1)
	if n := testing.AllocsPerRun(200, func() {
		h.ObserveExemplar(42, id)
	}); n != 0 {
		t.Fatalf("ObserveExemplar allocates %v per op, want 0", n)
	}
}
