package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Black-box reconstruction: given only the downlinked telemetry stream —
// the accident investigator's position — rebuild the causal timeline
// around each FDIR event: first observable symptom, detection
// (quarantine), recovery action, and return to service, plus the
// detection frame's causal span chain. The reconstruction is honest
// about bandwidth loss: frames it cannot attribute are reported as
// unknown (-1), which is exactly what experiment T15 scores.

// BlackboxConfig parameterizes the reconstruction. Zero values get
// defaults matching the fdir health machine (Quarantined=2, Healthy=0).
//
//safexplain:req REQ-XAI
type BlackboxConfig struct {
	// QuarantineCode is the health-state ordinal meaning "isolated"
	// (default 2, fdir.Quarantined).
	QuarantineCode int32
	// HealthyCode is the ordinal meaning "in service" (default 0,
	// fdir.Healthy).
	HealthyCode int32
}

func (c BlackboxConfig) withDefaults() BlackboxConfig {
	if c.QuarantineCode == 0 {
		c.QuarantineCode = 2
	}
	return c
}

// ChainEntry is one link of a reconstructed causal chain, root first.
//
//safexplain:req REQ-XAI
type ChainEntry struct {
	Stage string  `json:"stage"`
	Code  int32   `json:"code"`
	Value float64 `json:"value"`
}

// Incident is one reconstructed FDIR event. Frame fields are -1 when the
// downlinked stream does not carry enough evidence to attribute them.
//
//safexplain:req REQ-XAI REQ-TRUST
type Incident struct {
	// SymptomFrame is the start of the contiguous anomaly streak that
	// led to detection — the first observable symptom.
	SymptomFrame int32 `json:"symptom_frame"`
	// DetectionFrame is the quarantine transition frame.
	DetectionFrame int32 `json:"detection_frame"`
	// RecoveryFrame is the recovery action (golden-image reload) frame.
	RecoveryFrame int32 `json:"recovery_frame"`
	// ReturnFrame is the return-to-service (healthy) transition frame.
	ReturnFrame int32 `json:"return_frame"`
	// AnomalyFrames counts the observed anomaly verdicts in the streak.
	AnomalyFrames int `json:"anomaly_frames"`
	// FromDumpOnly marks an incident attributed solely from a
	// flight-recorder dump notice: the event spans themselves never fit
	// the downlink budget.
	FromDumpOnly bool `json:"from_dump_only"`
	// DumpHashPrefix, when a dump notice matched the detection frame, is
	// the hex prefix of the on-board flight hash — the evidence link.
	DumpHashPrefix string `json:"dump_hash_prefix,omitempty"`
	// Chain is the detection frame's causal span chain, root first.
	Chain []ChainEntry `json:"causal_chain,omitempty"`
}

// Report is the full black-box reconstruction of a telemetry capture.
// The field order is the canonical JSON order: CanonicalJSON marshals
// the struct directly, so two reconstructions of the same capture hash
// identically.
//
//safexplain:req REQ-XAI REQ-TRUST
type Report struct {
	TelemetryFrames int        `json:"telemetry_frames"`
	Spans           int        `json:"spans"`
	Metrics         int        `json:"metrics"`
	Dumps           int        `json:"dumps"`
	FirstFrame      int32      `json:"first_frame"`
	LastFrame       int32      `json:"last_frame"`
	Incidents       []Incident `json:"incidents"`
}

// Reconstruct rebuilds the incident timeline from decoded telemetry
// frames. Pure function over its inputs.
//
//safexplain:req REQ-XAI REQ-TRUST
func Reconstruct(frames []DownFrame, cfg BlackboxConfig) Report {
	cfg = cfg.withDefaults()
	rep := Report{FirstFrame: -1, LastFrame: -1}
	rep.TelemetryFrames = len(frames)

	var spans []TraceSpan
	var dumps []DumpSummary
	for _, f := range frames {
		for _, r := range f.Records {
			switch r.Kind {
			case RecSpan, RecSpanV2:
				spans = append(spans, r.Span)
			case RecMetric:
				rep.Metrics++
			case RecDump:
				dumps = append(dumps, r.Dump)
			}
		}
	}
	rep.Spans = len(spans)
	rep.Dumps = len(dumps)

	// Spans arrive in priority order, not time order: restore global
	// order by ordinal. Use the span's own Frame field — a span may be
	// downlinked many telemetry frames after it was recorded.
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
	if len(spans) > 0 {
		rep.FirstFrame = spans[0].Frame
		rep.LastFrame = spans[0].Frame
		for _, s := range spans {
			if s.Frame < rep.FirstFrame {
				rep.FirstFrame = s.Frame
			}
			if s.Frame > rep.LastFrame {
				rep.LastFrame = s.Frame
			}
		}
	}

	// Observed anomaly verdicts per frame (supervisor spans with
	// findings). Map is lookup-only; iteration below walks frames.
	anomaly := make(map[int32]bool)
	for _, s := range spans {
		if s.Stage == StageSupervisor && s.Code > 0 {
			anomaly[s.Frame] = true
		}
	}

	// An FDIR span records code=to, value=from; a transition is
	// code != from. A quarantine entry opens an incident; a re-entry
	// while the previous incident is still open (no return yet) belongs
	// to the same event.
	for i, s := range spans {
		if s.Stage != StageFDIR || s.Code == int32(s.Value) || s.Code != cfg.QuarantineCode {
			continue
		}
		if n := len(rep.Incidents); n > 0 && rep.Incidents[n-1].ReturnFrame < 0 {
			continue // same incident re-quarantining
		}
		inc := Incident{
			SymptomFrame:   -1,
			DetectionFrame: s.Frame,
			RecoveryFrame:  -1,
			ReturnFrame:    -1,
		}

		// Symptom: detection frequently lags the first symptom (the health
		// machine accumulates non-contiguous findings before isolating), so
		// anchor the search on the departure-from-healthy transition that
		// opened this episode, then walk the contiguous observed anomaly
		// streak backwards from the anchor. Dropped spans truncate the
		// claim — the reconstruction only attributes what the downlink
		// carried.
		anchor := s.Frame
		for _, p := range spans {
			if p.Seq >= s.Seq {
				break
			}
			if p.Stage == StageFDIR && p.Code != int32(p.Value) &&
				int32(p.Value) == cfg.HealthyCode && p.Code != cfg.HealthyCode {
				anchor = p.Frame // latest departure from healthy before detection
			}
		}
		if !anomaly[anchor] {
			anchor = s.Frame
		}
		if anomaly[anchor] {
			start := anchor
			//safexplain:bounded streak walk is capped by the observed frame range
			for anomaly[start-1] {
				start--
			}
			inc.SymptomFrame = start
			//safexplain:bounded count walk is capped by the observed frame range
			for f := start; f <= s.Frame; f++ {
				if anomaly[f] {
					inc.AnomalyFrames++
				}
			}
		}

		// Recovery: first recovery-stage span at or after detection.
		// Return: first transition back to healthy after detection.
		for _, r := range spans[i:] {
			if inc.RecoveryFrame < 0 && r.Stage == StageRecovery && r.Frame >= s.Frame {
				inc.RecoveryFrame = r.Frame
			}
			if r.Stage == StageFDIR && r.Code != int32(r.Value) &&
				r.Code == cfg.HealthyCode && r.Frame > s.Frame {
				inc.ReturnFrame = r.Frame
				break
			}
		}

		inc.Chain = causalChain(spans, s)
		for _, d := range dumps {
			if d.Frame == s.Frame && d.Trigger == "fdir-quarantine" {
				inc.DumpHashPrefix = fmt.Sprintf("%016x", d.HashPrefix)
				break
			}
		}
		rep.Incidents = append(rep.Incidents, inc)
	}

	// Dump notices whose frame matches no span-derived incident still
	// prove a quarantine happened — at tiny budgets they are the only
	// record that fits. Attribute what they carry.
	for _, d := range dumps {
		if d.Trigger != "fdir-quarantine" {
			continue
		}
		known := false
		for _, inc := range rep.Incidents {
			if inc.DetectionFrame == d.Frame {
				known = true
				break
			}
		}
		if known {
			continue
		}
		rep.Incidents = append(rep.Incidents, Incident{
			SymptomFrame:   -1,
			DetectionFrame: d.Frame,
			RecoveryFrame:  -1,
			ReturnFrame:    -1,
			FromDumpOnly:   true,
			DumpHashPrefix: fmt.Sprintf("%016x", d.HashPrefix),
		})
	}
	sort.Slice(rep.Incidents, func(i, j int) bool {
		return rep.Incidents[i].DetectionFrame < rep.Incidents[j].DetectionFrame
	})
	return rep
}

// causalChain walks the Cause links backwards from span s within its
// frame, returning the chain root first.
func causalChain(spans []TraceSpan, s TraceSpan) []ChainEntry {
	// Index this frame's spans by Idx.
	var frame []TraceSpan
	for _, x := range spans {
		if x.Frame == s.Frame {
			frame = append(frame, x)
		}
	}
	at := func(idx int16) (TraceSpan, bool) {
		for _, x := range frame {
			if x.Idx == idx {
				return x, true
			}
		}
		return TraceSpan{}, false
	}
	var rev []ChainEntry
	cur, ok := s, true
	for ok && len(rev) < traceScratch {
		rev = append(rev, ChainEntry{Stage: cur.Stage.String(), Code: cur.Code, Value: cur.Value})
		if cur.Cause < 0 {
			// Terminate at the structural root when present.
			if cur.Idx != 0 {
				if root, found := at(0); found {
					rev = append(rev, ChainEntry{Stage: root.Stage.String(), Code: root.Code, Value: root.Value})
				}
			}
			break
		}
		cur, ok = at(cur.Cause)
	}
	// Reverse: root first.
	out := make([]ChainEntry, len(rev))
	for i, e := range rev {
		out[len(rev)-1-i] = e
	}
	return out
}

// CanonicalJSON marshals the report in canonical form (fixed struct
// field order, no maps) — byte-identical across runs for the same
// capture.
func (r Report) CanonicalJSON() ([]byte, error) {
	return json.Marshal(r)
}

// Hash returns the SHA-256 over the canonical JSON, hex-encoded — this
// is the value the CLI links into the evidence chain.
func (r Report) Hash() (string, error) {
	b, err := r.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Table renders the reconstruction as a human-readable report.
func (r Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "black-box reconstruction: %d telemetry frames, %d spans, %d metrics, %d dump notices\n",
		r.TelemetryFrames, r.Spans, r.Metrics, r.Dumps)
	if r.FirstFrame >= 0 {
		fmt.Fprintf(&b, "observed frame range: [%d, %d]\n", r.FirstFrame, r.LastFrame)
	}
	if len(r.Incidents) == 0 {
		b.WriteString("no FDIR incidents reconstructed\n")
		return b.String()
	}
	for i, inc := range r.Incidents {
		fmt.Fprintf(&b, "incident #%d\n", i)
		fmt.Fprintf(&b, "  symptom frame    %s\n", frameOrUnknown(inc.SymptomFrame))
		fmt.Fprintf(&b, "  detection frame  %s", frameOrUnknown(inc.DetectionFrame))
		if inc.FromDumpOnly {
			b.WriteString("  (from dump notice only)")
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "  recovery frame   %s\n", frameOrUnknown(inc.RecoveryFrame))
		fmt.Fprintf(&b, "  return frame     %s\n", frameOrUnknown(inc.ReturnFrame))
		if inc.AnomalyFrames > 0 {
			fmt.Fprintf(&b, "  anomaly streak   %d frames\n", inc.AnomalyFrames)
		}
		if inc.DumpHashPrefix != "" {
			fmt.Fprintf(&b, "  dump hash        %s…\n", inc.DumpHashPrefix)
		}
		if len(inc.Chain) > 0 {
			b.WriteString("  causal chain     ")
			for j, e := range inc.Chain {
				if j > 0 {
					b.WriteString(" -> ")
				}
				fmt.Fprintf(&b, "%s[%d]", e.Stage, e.Code)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func frameOrUnknown(f int32) string {
	if f < 0 {
		return "unknown"
	}
	return fmt.Sprintf("%d", f)
}
