package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// populated returns a bundle with every metric family non-zero.
func populated() *Obs {
	o := New(Config{Name: "railway", FlightCapacity: 32, FrameBudget: 1000})
	o.Frames.Add(60)
	o.Delivered.Add(55)
	o.Fallbacks.Add(5)
	o.Health.Set(2)
	o.FrameCycles.Observe(400)
	o.FrameCycles.Observe(1100)
	o.TrustScore.Observe(0.8)
	o.Span(0, StageInfer, 1, 0.9)
	o.Span(0, StageFDIR, 0, 0)
	o.AutoDump("quarantine", 0)
	return o
}

func TestPrometheusExposition(t *testing.T) {
	out := populated().Snapshot().Prometheus()
	for _, want := range []string{
		`# TYPE safexplain_frames_total counter`,
		`safexplain_frames_total{system="railway"} 60`,
		`# TYPE safexplain_fdir_health_state gauge`,
		`safexplain_fdir_health_state{system="railway"} 2`,
		`# TYPE safexplain_rt_frame_cycles histogram`,
		`safexplain_rt_frame_cycles_bucket{system="railway",le="+Inf"} 2`,
		`safexplain_rt_frame_cycles_count{system="railway"} 2`,
		`safexplain_rt_frame_cycles_sum{system="railway"} 1500`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative.
	if !strings.Contains(out, `le="500"} 1`) {
		t.Fatalf("expected cumulative bucket le=500 count 1:\n%s", out)
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	o := populated()
	blob, err := o.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	if s.System != "railway" {
		t.Fatalf("system = %q", s.System)
	}
	found := false
	for _, c := range s.Counters {
		if c.Name == "frames_total" && c.Value == 60 {
			found = true
		}
	}
	if !found {
		t.Fatalf("frames_total missing from JSON: %s", blob)
	}
	if s.Flight == nil || s.Flight.Total != 2 || len(s.Flight.Dumps) != 1 {
		t.Fatalf("flight snapshot: %+v", s.Flight)
	}
	if s.Flight.Hash != o.Flight.Hash() {
		t.Fatal("flight hash not preserved")
	}
}

func TestTableRendering(t *testing.T) {
	out := populated().Snapshot().Table()
	for _, want := range []string{"frames_total", "60", "flight recorder", "dump trigger=quarantine"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q in:\n%s", want, out)
		}
	}
}

func TestFlightDumpRenders(t *testing.T) {
	o := populated()
	d := o.Flight.Dump()
	if !strings.Contains(d, "infer") || !strings.Contains(d, "fdir-verdict") {
		t.Fatalf("dump missing stages:\n%s", d)
	}
}
