package obs

import (
	"math"
	"runtime/metrics"
)

// runtime/metrics keys sampled by SelfStats. The names are stable Go
// runtime API; sampling them costs a few microseconds and never runs on
// a record path — Update is an explicit, caller-paced activity.
const (
	selfHeapKey  = "/memory/classes/heap/objects:bytes"
	selfGCKey    = "/gc/pauses:seconds"
	selfGoroKey  = "/sched/goroutines:goroutines"
	selfSchedKey = "/sched/latencies:seconds"
)

// SelfStats publishes the observer's own runtime health — live heap
// bytes, p99 GC pause, goroutine count, p99 scheduler latency — as
// plain gauges in a Registry, so the continuous-health watch can alert
// on the monitoring plane itself (a leaking or GC-thrashing observer is
// a hazard to the frame budget it claims to guard). Construction
// allocates; Update reuses the preallocated sample slice.
//
//safexplain:req REQ-WCET REQ-DET
type SelfStats struct {
	heap       *Gauge
	gcPause    *Gauge
	goroutines *Gauge
	schedLat   *Gauge
	samples    []metrics.Sample
}

// NewSelfStats declares the self-observability gauges on reg and
// returns the sampler. Gauge names are promlint-clean and prefixed
// self_ to keep them apart from the observed system's metrics.
//
//safexplain:req REQ-WCET REQ-DET
func NewSelfStats(reg *Registry) *SelfStats {
	return &SelfStats{
		heap:       reg.Gauge("self_heap_bytes", "live heap object bytes of this process (runtime/metrics)"),
		gcPause:    reg.Gauge("self_gc_pause_seconds", "p99 stop-the-world GC pause of this process (runtime/metrics)"),
		goroutines: reg.Gauge("self_goroutines", "live goroutine count of this process (runtime/metrics)"),
		schedLat:   reg.Gauge("self_sched_latency_seconds", "p99 goroutine scheduling latency of this process (runtime/metrics)"),
		samples: []metrics.Sample{
			{Name: selfHeapKey},
			{Name: selfGCKey},
			{Name: selfGoroKey},
			{Name: selfSchedKey},
		},
	}
}

// Update samples the runtime and refreshes the gauges. Not a hotpath:
// call it at watch cadence (or before an exposition), never per frame.
// Nil receivers are a no-op, matching the package's disabled-mode
// convention.
func (s *SelfStats) Update() {
	if s == nil {
		return
	}
	metrics.Read(s.samples)
	//safexplain:bounded sample list fixed at construction (4 entries)
	for i := range s.samples {
		sm := &s.samples[i]
		switch sm.Name {
		case selfHeapKey:
			if sm.Value.Kind() == metrics.KindUint64 {
				s.heap.Set(float64(sm.Value.Uint64()))
			}
		case selfGoroKey:
			if sm.Value.Kind() == metrics.KindUint64 {
				s.goroutines.Set(float64(sm.Value.Uint64()))
			}
		case selfGCKey:
			if sm.Value.Kind() == metrics.KindFloat64Histogram {
				s.gcPause.Set(runtimeHistQuantile(sm.Value.Float64Histogram(), 0.99))
			}
		case selfSchedKey:
			if sm.Value.Kind() == metrics.KindFloat64Histogram {
				s.schedLat.Set(runtimeHistQuantile(sm.Value.Float64Histogram(), 0.99))
			}
		}
	}
}

// runtimeHistQuantile estimates quantile q of a runtime/metrics
// histogram as the upper edge of the bucket holding the q-th
// observation, clamped to the last finite edge (the runtime's final
// bucket edge is +Inf). Returns 0 for an empty histogram.
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return 0
	}
	var total uint64
	//safexplain:bounded runtime histogram shape is fixed per Go release
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	edge := 0.0
	//safexplain:bounded runtime histogram shape is fixed per Go release
	for i, c := range h.Counts {
		cum += c
		upper := h.Buckets[i+1]
		if !math.IsInf(upper, 1) {
			edge = upper
		}
		if cum > rank {
			return edge
		}
	}
	return edge
}
