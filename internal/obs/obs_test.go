package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("frames_total", "frames")
	g := r.Gauge("health", "state")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry("test")
	h := r.Histogram("lat", "latency", 10, 20, 50)
	for _, v := range []float64{1, 9, 10, 11, 19, 21, 49, 51, 1000} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d", h.Count())
	}
	want := []uint64{3, 2, 2, 2} // <=10, <=20, <=50, +Inf
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if s := h.Sum(); s != 1171 {
		t.Fatalf("sum = %v", s)
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Fatalf("q50 = %v, want 20", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("q100 = %v, want +Inf", q)
	}
	if q := h.Quantile(0.01); q != 10 {
		t.Fatalf("q1 = %v, want 10", q)
	}
}

func TestHistogramUnsortedBoundsSorted(t *testing.T) {
	r := NewRegistry("test")
	h := r.Histogram("x", "", 50, 10, 20)
	b := h.Bounds()
	if b[0] != 10 || b[1] != 20 || b[2] != 50 {
		t.Fatalf("bounds not sorted: %v", b)
	}
}

func TestBudgetBounds(t *testing.T) {
	b := BudgetBounds(1000)
	if len(b) != 8 || b[0] != 250 || b[4] != 1000 || b[7] != 1500 {
		t.Fatalf("budget bounds: %v", b)
	}
}

// TestRecordPathZeroAllocs is the FUSA gate: counters, gauges, histograms
// and the flight recorder must not allocate on the record path, or the
// monitor perturbs the timing and memory behaviour it reports on.
func TestRecordPathZeroAllocs(t *testing.T) {
	o := New(Config{Name: "alloc-test", FrameBudget: 1_000_000})
	frame := 0
	allocs := testing.AllocsPerRun(200, func() {
		o.Frames.Inc()
		o.Anomalies.Add(2)
		o.Health.Set(1)
		o.FrameCycles.Observe(900_000)
		o.TrustScore.Observe(0.7)
		o.Span(frame, StageInfer, 3, 0.5)
		o.Span(frame, StageFDIR, 0, 0)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("record path allocates: %v allocs/op", allocs)
	}
}

// TestDisabledPathZeroAllocs: a nil *Obs must cost one branch, nothing
// more — the observability-off configuration T13 compares against.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var o *Obs
	allocs := testing.AllocsPerRun(200, func() {
		o.Span(1, StageInfer, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op", allocs)
	}
}

func TestConcurrentRecording(t *testing.T) {
	o := New(Config{Name: "race", FlightCapacity: 64})
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Frames.Inc()
				o.FrameCycles.Observe(float64(i))
				o.TrustScore.Observe(0.5)
				o.Span(i, StageInfer, int32(w), float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := o.Frames.Value(); got != workers*per {
		t.Fatalf("frames = %d, want %d", got, workers*per)
	}
	if got := o.FrameCycles.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := o.Flight.Total(); got != workers*per {
		t.Fatalf("flight total = %d, want %d", got, workers*per)
	}
	if o.Flight.Len() != 64 {
		t.Fatalf("flight held = %d, want capacity 64", o.Flight.Len())
	}
}

func TestFlightRingOrderAndWrap(t *testing.T) {
	f := NewFlight(8)
	for i := 0; i < 20; i++ {
		f.Record(i, StageInfer, int32(i), float64(i))
	}
	spans := f.Spans()
	if len(spans) != 8 {
		t.Fatalf("held %d, want 8", len(spans))
	}
	for i, s := range spans {
		wantSeq := uint64(12 + i)
		if s.Seq != wantSeq || s.Frame != int32(wantSeq) {
			t.Fatalf("span %d: seq=%d frame=%d, want %d", i, s.Seq, s.Frame, wantSeq)
		}
	}
	if f.Total() != 20 {
		t.Fatalf("total = %d", f.Total())
	}
}

func TestFlightHashDeterministicAndSensitive(t *testing.T) {
	mk := func(n int) *Flight {
		f := NewFlight(16)
		for i := 0; i < n; i++ {
			f.Record(i, StageFDIR, int32(i%3), float64(i)*0.5)
		}
		return f
	}
	a, b := mk(10), mk(10)
	if a.Hash() != b.Hash() {
		t.Fatal("identical histories hash differently")
	}
	c := mk(10)
	c.Record(99, StageDeadline, 1, 7)
	if a.Hash() == c.Hash() {
		t.Fatal("different histories hash identically")
	}
	// Code vs Value must not alias in the encoding.
	x, y := NewFlight(8), NewFlight(8)
	x.Record(0, StageInfer, 1, 0)
	y.Record(0, StageInfer, 0, math.Float64frombits(1))
	if x.Hash() == y.Hash() {
		t.Fatal("code/value fields alias in the hash encoding")
	}
}

func TestAutoDumpBoundedAndCounted(t *testing.T) {
	o := New(Config{Name: "dumps", MaxDumps: 2})
	o.Span(0, StageDeadline, 1, 100)
	r1 := o.AutoDump("deadline-miss", 0)
	o.Span(1, StageFDIR, 2, 0)
	o.AutoDump("quarantine", 1)
	o.AutoDump("quarantine", 2)
	if got := o.DumpsTotal.Value(); got != 3 {
		t.Fatalf("dump counter = %d, want 3", got)
	}
	dumps := o.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("retained dumps = %d, want 2 (bounded)", len(dumps))
	}
	if dumps[0] != r1 {
		t.Fatalf("first dump mismatch: %+v vs %+v", dumps[0], r1)
	}
	if r1.Hash == "" || r1.Spans != 1 || r1.Trigger != "deadline-miss" {
		t.Fatalf("dump record: %+v", r1)
	}
}

func TestNilObsIsSafe(t *testing.T) {
	var o *Obs
	o.Span(0, StageInfer, 0, 0)
	if rec := o.AutoDump("x", 0); rec != (DumpRecord{}) {
		t.Fatalf("nil AutoDump = %+v", rec)
	}
	if o.Dumps() != nil {
		t.Fatal("nil Dumps not nil")
	}
	if s := o.Snapshot(); s.System != "" {
		t.Fatalf("nil snapshot: %+v", s)
	}
	if o.Describe() != "observability disabled" {
		t.Fatal("nil Describe")
	}
}

func TestStageStrings(t *testing.T) {
	for s := StageBuild; s <= StageFrame; s++ {
		if strings.HasPrefix(s.String(), "Stage(") {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if !strings.HasPrefix(Stage(200).String(), "Stage(") {
		t.Fatal("unknown stage should format as Stage(n)")
	}
}
