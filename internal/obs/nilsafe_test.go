package obs

import (
	"reflect"
	"testing"
)

// The documented observability-off contract: a nil *Obs is the disabled
// monitor, and every record-path guard costs exactly one branch. That
// only holds if EVERY exported *Obs method tolerates a nil receiver —
// one unguarded method turns "observability off" into a crash in the
// operate path. The table pins the record-path methods with their
// expected disabled-mode results; the reflection sweep then calls every
// exported method with zero-value arguments so a future method cannot
// ship without a guard.

func TestObsNilReceiverRecordPath(t *testing.T) {
	var o *Obs

	// Record path: must all be no-ops.
	o.Span(1, StageInfer, 0, 0)
	o.TraceBegin(1)
	if ref := o.TraceChild(StageInfer, 0, 0, NoSpan); ref != NoSpan {
		t.Errorf("nil TraceChild = %v, want NoSpan", ref)
	}
	o.TraceSetCode(NoSpan, 3)
	if ref := o.TraceRoot(); ref != NoSpan {
		t.Errorf("nil TraceRoot = %v, want NoSpan", ref)
	}
	o.TraceEnd(1)
	o.AttachDownlink(nil)

	// Exceptional / export path: must return zero values.
	if rec := o.AutoDump("fdir-quarantine", 1); rec != (DumpRecord{}) {
		t.Errorf("nil AutoDump = %+v, want zero record", rec)
	}
	if d := o.Dumps(); d != nil {
		t.Errorf("nil Dumps = %v, want nil", d)
	}
	if s := o.Snapshot(); s.System != "" || len(s.Counters) != 0 {
		t.Errorf("nil Snapshot = %+v, want zero snapshot", s)
	}
	if desc := o.Describe(); desc != "observability disabled" {
		t.Errorf("nil Describe = %q", desc)
	}
}

// TestObsNilReceiverSweep calls every exported *Obs method on a nil
// receiver with zero-value arguments. Any method added without a nil
// guard fails here before it can crash a disabled-monitor deployment.
func TestObsNilReceiverSweep(t *testing.T) {
	typ := reflect.TypeOf((*Obs)(nil))
	nilObs := reflect.ValueOf((*Obs)(nil))
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		t.Run(m.Name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("(*Obs)(nil).%s panicked: %v — every exported method must be nil-receiver-safe", m.Name, r)
				}
			}()
			args := []reflect.Value{nilObs}
			for p := 1; p < m.Type.NumIn(); p++ {
				args = append(args, reflect.New(m.Type.In(p)).Elem())
			}
			m.Func.Call(args)
		})
	}
}
