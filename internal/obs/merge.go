package obs

import (
	"errors"
	"fmt"
	"math"
)

// Snapshot merging: a fleet ground segment aggregates the registries of
// many units (or of many ingest shards) into one exposition. Merging is
// defined only between snapshots whose registries were declared
// identically — same metric names, in the same declaration order, with
// bit-identical histogram bounds — which is exactly what N instances of
// the same constructor produce. Under that contract the merge is
// order-independent: counter and bucket sums are exact uint64 additions,
// and histogram sums stay exact as long as the observed values are
// integral (the fleet ingest path observes only integer-valued
// quantities for this reason).

// ErrMerge reports merge-incompatible snapshots: different metric sets,
// orders, or histogram bucket layouts.
//
//safexplain:req REQ-DET
var ErrMerge = errors.New("obs: snapshots are not merge-compatible")

// Merge folds src into h: bucket counts, count and sum add. The bounds
// must match bit-for-bit — fixed-bucket histograms merge only within one
// declaration.
//
//safexplain:req REQ-DET REQ-XAI
func (h *HistogramSnap) Merge(src HistogramSnap) error {
	if h.Name != src.Name {
		return fmt.Errorf("%w: histogram %q vs %q", ErrMerge, h.Name, src.Name)
	}
	if len(h.Bounds) != len(src.Bounds) || len(h.Buckets) != len(src.Buckets) {
		return fmt.Errorf("%w: histogram %q bucket layout differs", ErrMerge, h.Name)
	}
	for i := range h.Bounds {
		if math.Float64bits(h.Bounds[i]) != math.Float64bits(src.Bounds[i]) {
			return fmt.Errorf("%w: histogram %q bound %d differs", ErrMerge, h.Name, i)
		}
	}
	for i := range h.Buckets {
		h.Buckets[i] += src.Buckets[i]
	}
	h.Count += src.Count
	h.Sum += src.Sum
	// The merged exemplar is the worst one: larger value wins, ties go
	// to the lower TraceID (fixed-width hex, so string order is numeric
	// order) — max and min are both commutative and associative, keeping
	// the merge order-independent.
	if src.Exemplar != nil {
		if h.Exemplar == nil || src.Exemplar.Value > h.Exemplar.Value ||
			(math.Float64bits(src.Exemplar.Value) == math.Float64bits(h.Exemplar.Value) &&
				src.Exemplar.TraceID < h.Exemplar.TraceID) {
			ex := *src.Exemplar
			h.Exemplar = &ex
		}
	}
	return nil
}

// Merge folds src into s position-wise: counters add, gauges add (a
// merged gauge is a fleet subtotal; non-additive per-unit readings
// belong in unit ledgers, not merged registries), histograms merge
// bucket-wise. The snapshots must carry the same metrics in the same
// declaration order; the System label of the receiver wins.
//
//safexplain:req REQ-DET REQ-XAI
func (s *Snapshot) Merge(src Snapshot) error {
	if len(s.Counters) != len(src.Counters) || len(s.Gauges) != len(src.Gauges) ||
		len(s.Histograms) != len(src.Histograms) {
		return fmt.Errorf("%w: metric counts differ (%d/%d/%d vs %d/%d/%d)", ErrMerge,
			len(s.Counters), len(s.Gauges), len(s.Histograms),
			len(src.Counters), len(src.Gauges), len(src.Histograms))
	}
	for i := range s.Counters {
		if s.Counters[i].Name != src.Counters[i].Name {
			return fmt.Errorf("%w: counter %d is %q vs %q", ErrMerge, i, s.Counters[i].Name, src.Counters[i].Name)
		}
		s.Counters[i].Value += src.Counters[i].Value
	}
	for i := range s.Gauges {
		if s.Gauges[i].Name != src.Gauges[i].Name {
			return fmt.Errorf("%w: gauge %d is %q vs %q", ErrMerge, i, s.Gauges[i].Name, src.Gauges[i].Name)
		}
		s.Gauges[i].Value += src.Gauges[i].Value
	}
	for i := range s.Histograms {
		if err := s.Histograms[i].Merge(src.Histograms[i]); err != nil {
			return err
		}
	}
	return nil
}

// CloneMetrics returns a deep copy of the snapshot's metric sections
// (flight/trace/downlink summaries are not copied — they describe one
// unit and have no fleet meaning). Use it to seed a merge without
// aliasing the source's bucket slices.
//
//safexplain:req REQ-DET
func (s Snapshot) CloneMetrics() Snapshot {
	out := Snapshot{System: s.System}
	out.Counters = append([]CounterSnap(nil), s.Counters...)
	out.Gauges = append([]GaugeSnap(nil), s.Gauges...)
	out.Histograms = make([]HistogramSnap, len(s.Histograms))
	for i, h := range s.Histograms {
		out.Histograms[i] = HistogramSnap{
			Name: h.Name, Help: h.Help,
			Bounds:  append([]float64(nil), h.Bounds...),
			Buckets: append([]uint64(nil), h.Buckets...),
			Count:   h.Count, Sum: h.Sum,
		}
		if h.Exemplar != nil {
			ex := *h.Exemplar
			out.Histograms[i].Exemplar = &ex
		}
	}
	return out
}
