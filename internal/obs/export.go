package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Exporters: the registry state is frozen into a Snapshot, which renders
// as Prometheus text exposition, a JSON document, or a human-readable
// table. Snapshots are taken off the record path; they allocate freely.

// CounterSnap is one counter's frozen state.
//
//safexplain:req REQ-XAI
type CounterSnap struct {
	Name  string `json:"name"`
	Help  string `json:"help"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's frozen state.
//
//safexplain:req REQ-XAI
type GaugeSnap struct {
	Name  string  `json:"name"`
	Help  string  `json:"help"`
	Value float64 `json:"value"`
}

// ExemplarSnap is a histogram's frozen exemplar: the worst observation
// of the scrape interval and the TraceID (16 hex digits) of the frame
// that produced it — the metric→trace link the OpenMetrics exposition
// and the watch alert ledger surface.
//
//safexplain:req REQ-XAI
type ExemplarSnap struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// HistogramSnap is one histogram's frozen state. Buckets has one more
// entry than Bounds (the +Inf bucket).
//
//safexplain:req REQ-XAI
type HistogramSnap struct {
	Name    string    `json:"name"`
	Help    string    `json:"help"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	// Exemplar is the worst-case observation since the previous snapshot
	// (nil when none was recorded) — taken with reset, so each snapshot
	// covers exactly its own scrape interval.
	Exemplar *ExemplarSnap `json:"exemplar,omitempty"`
}

// FlightSnap summarizes the flight recorder's state.
//
//safexplain:req REQ-XAI
type FlightSnap struct {
	Capacity int          `json:"capacity"`
	Held     int          `json:"held"`
	Total    uint64       `json:"total"`
	Hash     string       `json:"hash"`
	Dumps    []DumpRecord `json:"dumps,omitempty"`
}

// TraceSnap summarizes the causal trace context's state.
//
//safexplain:req REQ-XAI
type TraceSnap struct {
	Capacity int    `json:"capacity"`
	Held     int    `json:"held"`
	Total    uint64 `json:"total"`
	Frames   uint64 `json:"frames"`
	Overflow uint64 `json:"overflow"`
	Hash     string `json:"hash"`
}

// DownlinkSnap summarizes the telemetry downlink's state.
//
//safexplain:req REQ-XAI
type DownlinkSnap struct {
	BytesPerFrame int       `json:"bytes_per_frame"`
	Frames        uint64    `json:"frames"`
	CapturedBytes int       `json:"captured_bytes"`
	Dropped       [3]uint64 `json:"dropped"` // per priority channel
	DroppedFrames uint64    `json:"dropped_frames"`
	Pending       [3]int    `json:"pending"`
	Hash          string    `json:"hash"`
}

// Snapshot is a consistent-enough point-in-time copy of an Obs bundle
// (each metric is read atomically; the set is not globally fenced, which
// is the standard exposition contract).
//
//safexplain:req REQ-XAI REQ-TRUST
type Snapshot struct {
	System     string          `json:"system"`
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
	Flight     *FlightSnap     `json:"flight,omitempty"`
	Trace      *TraceSnap      `json:"trace,omitempty"`
	Downlink   *DownlinkSnap   `json:"downlink,omitempty"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{System: r.name}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{c.name, c.help, c.Value()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{g.name, g.help, g.Value()})
	}
	for _, h := range r.hists {
		hs := HistogramSnap{
			Name: h.name, Help: h.help, Bounds: h.Bounds(),
			Buckets: h.BucketCounts(), Count: h.Count(), Sum: h.Sum(),
		}
		if v, id, ok := h.TakeExemplar(); ok {
			hs.Exemplar = &ExemplarSnap{Value: v, TraceID: FormatTraceID(id)}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// Snapshot freezes the whole bundle, including the flight recorder
// summary and retained dump records. Nil-safe (returns a zero snapshot).
func (o *Obs) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	s := o.Reg.Snapshot()
	s.Flight = &FlightSnap{
		Capacity: o.Flight.Cap(), Held: o.Flight.Len(),
		Total: o.Flight.Total(), Hash: o.Flight.Hash(), Dumps: o.Dumps(),
	}
	if o.Trace != nil && o.Trace.Total() > 0 {
		s.Trace = &TraceSnap{
			Capacity: o.Trace.Cap(), Held: o.Trace.Len(),
			Total: o.Trace.Total(), Frames: o.Trace.Frames(),
			Overflow: o.Trace.Overflow(), Hash: o.Trace.Hash(),
		}
	}
	if d := o.Down; d != nil {
		dropped, dropFr := d.Dropped()
		s.Downlink = &DownlinkSnap{
			BytesPerFrame: d.BytesPerFrame(), Frames: d.Frames(),
			CapturedBytes: d.CaptureLen(), Dropped: dropped,
			DroppedFrames: dropFr, Pending: d.Pending(), Hash: d.Hash(),
		}
	}
	return s
}

// promName prefixes and sanitizes a metric name for exposition.
func promName(name string) string { return "safexplain_" + name }

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Prometheus renders the snapshot in the text exposition format.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	label := fmt.Sprintf("{system=%q}", s.System)
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n", n, c.Help, n, n, label, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s%s %s\n", n, g.Help, n, n, label, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", n, h.Help, n)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{system=%q,le=%q} %d\n", n, s.System, promFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{system=%q,le=\"+Inf\"} %d\n", n, s.System, h.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n%s_count%s %d\n", n, label, promFloat(h.Sum), n, label, h.Count)
	}
	return b.String()
}

// omFamily strips the _total suffix counters already carry: OpenMetrics
// names the metric family without the suffix and the sample with it.
func omFamily(name string) string { return strings.TrimSuffix(name, "_total") }

// omExemplar renders the OpenMetrics exemplar suffix for one bucket
// line: " # {trace_id=\"…\"} value".
func omExemplar(e *ExemplarSnap) string {
	return fmt.Sprintf(" # {trace_id=%q} %s", e.TraceID, promFloat(e.Value))
}

// OpenMetrics renders the snapshot in the OpenMetrics text exposition
// (application/openmetrics-text): counter families are named without
// their _total suffix while their samples keep it, histogram bucket
// lines carry the scrape interval's worst-case exemplar on the bucket
// the observation landed in, and the exposition is terminated by the
// mandatory # EOF marker. The Prometheus text rendering remains
// available unchanged — /metrics negotiates between the two on the
// Accept header.
func (s Snapshot) OpenMetrics() string {
	return s.OpenMetricsBody() + "# EOF\n"
}

// OpenMetricsBody renders the snapshot's metric families without the
// terminating # EOF marker — the composable form an endpoint uses to
// concatenate several registries into one valid exposition before
// appending the single final marker.
func (s Snapshot) OpenMetricsBody() string {
	var b strings.Builder
	label := fmt.Sprintf("{system=%q}", s.System)
	for _, c := range s.Counters {
		fam := omFamily(promName(c.Name))
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s_total%s %d\n",
			fam, c.Help, fam, fam, label, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s%s %s\n",
			n, g.Help, n, n, label, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", n, h.Help, n)
		// The exemplar annotates the bucket its observation fell into —
		// the first bound at or above the value, else +Inf.
		exBucket := -1
		if h.Exemplar != nil {
			exBucket = len(h.Bounds)
			for i, bound := range h.Bounds {
				if h.Exemplar.Value <= bound {
					exBucket = i
					break
				}
			}
		}
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			ex := ""
			if i == exBucket {
				ex = omExemplar(h.Exemplar)
			}
			fmt.Fprintf(&b, "%s_bucket{system=%q,le=%q} %d%s\n", n, s.System, promFloat(bound), cum, ex)
		}
		ex := ""
		if exBucket == len(h.Bounds) && h.Exemplar != nil {
			ex = omExemplar(h.Exemplar)
		}
		fmt.Fprintf(&b, "%s_bucket{system=%q,le=\"+Inf\"} %d%s\n", n, s.System, h.Count, ex)
		fmt.Fprintf(&b, "%s_sum%s %s\n%s_count%s %d\n", n, label, promFloat(h.Sum), n, label, h.Count)
	}
	return b.String()
}

// JSON renders the snapshot as an indented JSON document.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Table renders the snapshot as a human-readable table.
func (s Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system %q\n", s.System)
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "  %-28s %12d  %s\n", c.Name, c.Value, c.Help)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "  %-28s %12g  %s\n", g.Name, g.Value, g.Help)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "  %-28s count=%d sum=%g  %s\n", h.Name, h.Count, h.Sum, h.Help)
		for i, bound := range h.Bounds {
			if h.Buckets[i] > 0 {
				fmt.Fprintf(&b, "    le %-12s %12d\n", promFloat(bound), h.Buckets[i])
			}
		}
		if inf := h.Buckets[len(h.Buckets)-1]; inf > 0 {
			fmt.Fprintf(&b, "    le %-12s %12d\n", "+Inf", inf)
		}
	}
	if s.Flight != nil {
		fmt.Fprintf(&b, "  flight recorder: %d/%d spans held (%d recorded), hash %.12s…\n",
			s.Flight.Held, s.Flight.Capacity, s.Flight.Total, s.Flight.Hash)
		for _, d := range s.Flight.Dumps {
			fmt.Fprintf(&b, "    dump trigger=%s frame=%d spans=%d hash %.12s…\n",
				d.Trigger, d.Frame, d.Spans, d.Hash)
		}
	}
	if s.Trace != nil {
		fmt.Fprintf(&b, "  trace context: %d/%d spans held (%d over %d frames, %d overflowed), hash %.12s…\n",
			s.Trace.Held, s.Trace.Capacity, s.Trace.Total, s.Trace.Frames,
			s.Trace.Overflow, s.Trace.Hash)
	}
	if s.Downlink != nil {
		fmt.Fprintf(&b, "  downlink: budget %d B/frame, %d frames, %d bytes, drops hk=%d ev=%d inc=%d, hash %.12s…\n",
			s.Downlink.BytesPerFrame, s.Downlink.Frames, s.Downlink.CapturedBytes,
			s.Downlink.Dropped[0], s.Downlink.Dropped[1], s.Downlink.Dropped[2],
			s.Downlink.Hash)
	}
	return b.String()
}
