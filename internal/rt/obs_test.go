package rt

import (
	"testing"

	"safexplain/internal/obs"
)

// TestExecutiveObsRecordsFrames: the executive feeds the frame-cycles
// histogram, the miss/watchdog counters and the deadline-check span, and
// auto-dumps the flight recorder on a deadline miss.
func TestExecutiveObsRecordsFrames(t *testing.T) {
	over := &Task{Name: "hog", Budget: 100, Criticality: CritHigh,
		Run: func(int) uint64 { return 150 }}
	exec, err := NewExecutive(Config{FrameBudget: 120}, over)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.Config{Name: "rt-test", FrameBudget: 120})
	exec.Obs = o

	rep := exec.RunFrames(5)
	if rep.DeadlineMisses != 5 || rep.WatchdogFires != 5 {
		t.Fatalf("report: %+v", rep)
	}
	if got := o.DeadlineMisses.Value(); got != 5 {
		t.Fatalf("miss counter %d, want 5", got)
	}
	if got := o.WatchdogFires.Value(); got != 5 {
		t.Fatalf("watchdog counter %d, want 5", got)
	}
	if got := o.FrameCycles.Count(); got != 5 {
		t.Fatalf("frame cycles count %d, want 5", got)
	}
	if got := o.FrameCycles.Sum(); got != 750 {
		t.Fatalf("frame cycles sum %v, want 750", got)
	}
	if got := o.DumpsTotal.Value(); got != 5 {
		t.Fatalf("dump counter %d, want 5 (one per miss)", got)
	}
	var deadlineSpans int
	for _, sp := range o.Flight.Spans() {
		if sp.Stage == obs.StageDeadline {
			deadlineSpans++
			if sp.Code != 1 || sp.Value != 150 {
				t.Fatalf("deadline span: %+v", sp)
			}
		}
	}
	if deadlineSpans != 5 {
		t.Fatalf("deadline spans %d, want 5", deadlineSpans)
	}
}

// TestExecutiveObsShedCounted: shed slots in high-criticality mode are
// counted.
func TestExecutiveObsShedCounted(t *testing.T) {
	i := 0
	hog := &Task{Name: "hog", Budget: 100, Criticality: CritHigh,
		Run: func(int) uint64 {
			i++
			if i == 1 {
				return 300 // trip the watchdog once
			}
			return 50
		}}
	low := &Task{Name: "low", Budget: 50, Criticality: CritLow,
		Run: func(int) uint64 { return 10 }}
	exec, err := NewExecutive(Config{FrameBudget: 200, RecoveryFrames: 2}, hog, low)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.Config{Name: "rt-shed"})
	exec.Obs = o
	exec.RunFrames(4)
	if got := o.ShedSlots.Value(); got == 0 {
		t.Fatal("no shed slots counted after a watchdog fire")
	}
}
