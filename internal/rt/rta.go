package rt

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Response-time analysis (RTA) for fixed-priority preemptive scheduling —
// the classical schedulability proof (Joseph & Pandya / Audsley) that
// complements the cyclic executive: given each task's WCET (here, a pWCET
// from internal/mbpta), period, and priority, the worst-case response time
// of task i is the least fixed point of
//
//	R_i = C_i + B_i + Σ_{j ∈ hp(i)} ceil(R_i / T_j) · C_j
//
// and the task set is schedulable iff R_i <= D_i for all i. Because C_i is
// a pWCET with exceedance probability p, the resulting guarantee is itself
// probabilistic: deadlines hold unless some job overruns its pWCET, which
// is the quantified residual risk the safety case carries.

// RTATask is one task of the analyzed set. Times are in cycles (any
// consistent unit works).
//
//safexplain:req REQ-WCET
type RTATask struct {
	Name     string
	C        uint64 // worst-case execution time (e.g. pWCET)
	T        uint64 // period (minimum inter-arrival)
	D        uint64 // relative deadline (0 means D = T)
	B        uint64 // blocking from lower-priority critical sections
	Priority int    // larger = higher priority; must be unique
}

// RTAResult is the per-task outcome.
//
//safexplain:req REQ-WCET
type RTAResult struct {
	Task        RTATask
	Response    uint64 // worst-case response time (valid if Schedulable)
	Schedulable bool
}

// ErrUnschedulable is wrapped in Analyze's error when some task cannot
// meet its deadline.
//
//safexplain:req REQ-WCET
var ErrUnschedulable = errors.New("rt: task set unschedulable")

// Analyze runs exact RTA on the task set and returns per-task worst-case
// response times, highest priority first. It returns an error (wrapping
// ErrUnschedulable) if any task misses its deadline, alongside the full
// result table for diagnosis.
//
//safexplain:req REQ-WCET
func Analyze(tasks []RTATask) ([]RTAResult, error) {
	if len(tasks) == 0 {
		return nil, errors.New("rt: empty task set")
	}
	sorted := make([]RTATask, len(tasks))
	copy(sorted, tasks)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Priority > sorted[j].Priority })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Priority == sorted[i-1].Priority {
			return nil, fmt.Errorf("rt: duplicate priority %d (%s, %s)",
				sorted[i].Priority, sorted[i-1].Name, sorted[i].Name)
		}
	}
	for _, t := range sorted {
		if t.C == 0 || t.T == 0 {
			return nil, fmt.Errorf("rt: task %q needs positive C and T", t.Name)
		}
	}

	results := make([]RTAResult, len(sorted))
	var firstFail string
	for i, t := range sorted {
		d := t.D
		if d == 0 {
			d = t.T
		}
		r, ok := responseTime(t, sorted[:i], d)
		results[i] = RTAResult{Task: t, Response: r, Schedulable: ok}
		if !ok && firstFail == "" {
			firstFail = t.Name
		}
	}
	if firstFail != "" {
		return results, fmt.Errorf("%w: %s misses its deadline", ErrUnschedulable, firstFail)
	}
	return results, nil
}

// responseTime iterates the RTA recurrence to a fixed point, bounded by
// the deadline (beyond which the task already failed).
func responseTime(t RTATask, hp []RTATask, deadline uint64) (uint64, bool) {
	r := t.C + t.B
	for {
		next := t.C + t.B
		for _, h := range hp {
			next += ceilDiv(r, h.T) * h.C
		}
		if next == r {
			return r, r <= deadline
		}
		if next > deadline {
			return next, false
		}
		r = next
	}
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// Utilization returns ΣC_i/T_i for the set.
//
//safexplain:req REQ-WCET
func Utilization(tasks []RTATask) float64 {
	u := 0.0
	for _, t := range tasks {
		u += float64(t.C) / float64(t.T)
	}
	return u
}

// RenderRTA formats an analysis result table.
//
//safexplain:req REQ-WCET
func RenderRTA(results []RTAResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %4s %12s %12s %12s %12s  %s\n",
		"task", "prio", "C", "T", "D", "response", "ok")
	for _, r := range results {
		d := r.Task.D
		if d == 0 {
			d = r.Task.T
		}
		fmt.Fprintf(&b, "%-16s %4d %12d %12d %12d %12d  %v\n",
			r.Task.Name, r.Task.Priority, r.Task.C, r.Task.T, d, r.Response, r.Schedulable)
	}
	return b.String()
}
