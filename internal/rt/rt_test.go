package rt

import (
	"errors"
	"strings"
	"testing"
)

func constant(c uint64) func(int) uint64 { return func(int) uint64 { return c } }

func TestNewExecutiveValidation(t *testing.T) {
	if _, err := NewExecutive(Config{FrameBudget: 100}); !errors.Is(err, ErrNoTasks) {
		t.Fatal("expected ErrNoTasks")
	}
	if _, err := NewExecutive(Config{FrameBudget: 100},
		&Task{Name: "a", Budget: 60, Run: constant(1)},
		&Task{Name: "b", Budget: 60, Run: constant(1)},
	); err == nil {
		t.Fatal("over-committed schedule must be rejected")
	}
	if _, err := NewExecutive(Config{FrameBudget: 100},
		&Task{Name: "a", Budget: 60},
	); err == nil {
		t.Fatal("task without Run must be rejected")
	}
}

func TestCleanScheduleNoMisses(t *testing.T) {
	e, err := NewExecutive(Config{FrameBudget: 100},
		&Task{Name: "sense", Budget: 30, Criticality: CritHigh, Run: constant(20)},
		&Task{Name: "infer", Budget: 50, Criticality: CritHigh, Run: constant(40)},
		&Task{Name: "log", Budget: 20, Criticality: CritLow, Run: constant(10)},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.RunFrames(100)
	if rep.DeadlineMisses != 0 || rep.WatchdogFires != 0 || rep.Degradations != 0 {
		t.Fatalf("clean schedule produced: %s", rep)
	}
	if rep.Utilization != 0.7 {
		t.Fatalf("utilization = %v, want 0.7", rep.Utilization)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	e, err := NewExecutive(Config{FrameBudget: 100},
		&Task{Name: "spiky", Budget: 50, Criticality: CritHigh, Run: func(f int) uint64 {
			if f == 3 {
				return 60
			}
			return 40
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.RunFrames(10)
	if rep.DeadlineMisses != 1 || rep.PerTaskMisses["spiky"] != 1 {
		t.Fatalf("report: %s", rep)
	}
	// A single task overrun within the frame budget: no watchdog.
	if rep.WatchdogFires != 0 {
		t.Fatalf("watchdog fired on task-level miss: %s", rep)
	}
}

func TestDegradationAfterConsecutiveOverruns(t *testing.T) {
	calls := map[string]int{}
	e, err := NewExecutive(Config{FrameBudget: 100, OverrunLimit: 3},
		&Task{Name: "dl", Budget: 50, Criticality: CritHigh,
			Run: func(int) uint64 {
				calls["primary"]++
				return 70 // always overruns
			},
			Degraded: func(int) uint64 {
				calls["degraded"]++
				return 10
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.RunFrames(10)
	// Primary runs 3 times (the overruns), then the degraded version.
	if calls["primary"] != 3 || calls["degraded"] != 7 {
		t.Fatalf("calls = %v", calls)
	}
	if !e.Degraded("dl") {
		t.Fatal("task should be flagged degraded")
	}
	if rep.Degradations != 1 {
		t.Fatalf("degradations = %d", rep.Degradations)
	}
}

func TestOverrunCounterResetsOnCleanFrame(t *testing.T) {
	n := 0
	e, err := NewExecutive(Config{FrameBudget: 100, OverrunLimit: 3},
		&Task{Name: "alt", Budget: 50, Criticality: CritHigh,
			Run: func(int) uint64 {
				n++
				if n%2 == 0 {
					return 70
				}
				return 30
			},
			Degraded: constant(5)},
	)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFrames(20)
	if e.Degraded("alt") {
		t.Fatal("alternating overruns must not reach the consecutive limit")
	}
}

func TestWatchdogAndModeSwitch(t *testing.T) {
	frame := 0
	e, err := NewExecutive(Config{FrameBudget: 100, RecoveryFrames: 3, MinCriticality: CritMedium},
		&Task{Name: "critical", Budget: 80, Criticality: CritHigh, Run: func(int) uint64 {
			frame++
			if frame == 2 {
				return 120 // blow the frame once
			}
			return 40
		}},
		&Task{Name: "housekeeping", Budget: 20, Criticality: CritLow, Run: constant(10)},
	)
	if err != nil {
		t.Fatal(err)
	}
	r1 := e.Step(0)
	if r1.Watchdog || len(r1.Shed) != 0 {
		t.Fatalf("frame 0: %+v", r1)
	}
	r2 := e.Step(1)
	if !r2.Watchdog {
		t.Fatal("frame 1 should trip the watchdog")
	}
	// Next frames: high mode sheds the low-criticality task.
	r3 := e.Step(2)
	if !r3.HighMode || len(r3.Shed) != 1 || r3.Shed[0] != "housekeeping" {
		t.Fatalf("frame 2: %+v", r3)
	}
	// After RecoveryFrames clean frames the mode clears.
	e.Step(3)
	e.Step(4)
	if e.HighMode() {
		t.Fatal("executive should have recovered to normal mode")
	}
	r6 := e.Step(5)
	if len(r6.Shed) != 0 {
		t.Fatal("recovered mode must run all tasks")
	}
}

func TestHighCriticalityTaskNeverShed(t *testing.T) {
	blow := true
	e, err := NewExecutive(Config{FrameBudget: 50, MinCriticality: CritHigh},
		&Task{Name: "vital", Budget: 50, Criticality: CritHigh, Run: func(int) uint64 {
			if blow {
				blow = false
				return 200
			}
			return 10
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.RunFrames(10)
	if rep.ShedSlots != 0 {
		t.Fatal("the highest-criticality task must never be shed")
	}
	if rep.WatchdogFires != 1 {
		t.Fatalf("watchdog fires = %d", rep.WatchdogFires)
	}
}

func TestReportString(t *testing.T) {
	e, err := NewExecutive(Config{FrameBudget: 100},
		&Task{Name: "a", Budget: 10, Criticality: CritHigh, Run: constant(5)})
	if err != nil {
		t.Fatal(err)
	}
	s := e.RunFrames(4).String()
	for _, want := range []string{"frames=4", "misses=0", "util="} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func TestCriticalityString(t *testing.T) {
	if CritLow.String() != "low" || CritHigh.String() != "high" || Criticality(7).String() == "" {
		t.Fatal("criticality names wrong")
	}
}

func TestDegradedUnknownTask(t *testing.T) {
	e, err := NewExecutive(Config{FrameBudget: 10},
		&Task{Name: "a", Budget: 5, Run: constant(1)})
	if err != nil {
		t.Fatal(err)
	}
	if e.Degraded("nope") {
		t.Fatal("unknown task should report not degraded")
	}
}
