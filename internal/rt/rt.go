// Package rt is the real-time executive substrate: a static cyclic
// schedule with per-task WCET budgets (typically pWCET values from
// internal/mbpta), deadline-miss detection, a frame watchdog, and
// mixed-criticality degradation — the runtime counterpart of pillar P4's
// "real-time constraints" and the execution environment experiment T9 runs
// the integrated system in.
//
// The executive is simulated in cycles, matching internal/platform: a task
// "runs" by reporting how many cycles it consumed, which in the
// experiments comes from platform.Run on the inference workload.
//
// Scheduling model (deliberately the simplest certifiable one):
//
//   - Time is divided into fixed frames of FrameBudget cycles.
//   - Every frame executes the task list in order; each task has a cycle
//     Budget (its time slot).
//   - A task exceeding its budget is a deadline miss. OverrunLimit
//     consecutive misses switch the task to its Degraded implementation
//     when it has one (e.g. the Simplex fallback channel).
//   - If the whole frame exceeds FrameBudget, the watchdog fires and the
//     executive enters high-criticality mode: tasks below MinCriticality
//     are shed until RecoveryFrames consecutive clean frames pass — the
//     classical mixed-criticality mode switch.
//
// The package is replay-deterministic: no wall clock, no ambient
// randomness, no map iteration on any decision path.
//
//safexplain:deterministic
package rt

import (
	"errors"
	"fmt"
	"strings"

	"safexplain/internal/obs"
	"safexplain/internal/prof"
)

// Criticality is the task importance scale; higher sheds later. It mirrors
// safety.IntegrityLevel without importing it, keeping rt a leaf substrate.
//
//safexplain:req REQ-PATTERN
type Criticality int

// Criticality bands.
//
//safexplain:req REQ-PATTERN
const (
	CritLow Criticality = iota
	CritMedium
	CritHigh
)

// String returns the band name.
func (c Criticality) String() string {
	switch c {
	case CritLow:
		return "low"
	case CritMedium:
		return "medium"
	case CritHigh:
		return "high"
	default:
		return fmt.Sprintf("Criticality(%d)", int(c))
	}
}

// Task is one slot of the cyclic frame. Run (and Degraded, when present)
// return the cycles consumed on the given frame index.
//
//safexplain:req REQ-WCET
type Task struct {
	Name        string
	Budget      uint64
	Criticality Criticality
	Run         func(frame int) uint64
	// Degraded, if non-nil, replaces Run after OverrunLimit consecutive
	// overruns (fail-operational degradation).
	Degraded func(frame int) uint64
}

// Config tunes the executive.
//
//safexplain:req REQ-WCET REQ-PATTERN
type Config struct {
	FrameBudget uint64
	// OverrunLimit is the consecutive-overrun count that triggers task
	// degradation (default 3).
	OverrunLimit int
	// MinCriticality is the band kept running in high-criticality mode
	// (default CritMedium: low tasks are shed).
	MinCriticality Criticality
	// RecoveryFrames is the clean-frame count required to leave
	// high-criticality mode (default 5).
	RecoveryFrames int
}

func (c Config) withDefaults() Config {
	if c.OverrunLimit <= 0 {
		c.OverrunLimit = 3
	}
	if c.RecoveryFrames <= 0 {
		c.RecoveryFrames = 5
	}
	if c.MinCriticality == 0 {
		c.MinCriticality = CritMedium
	}
	return c
}

// Executive owns the schedule state across frames.
//
//safexplain:req REQ-WCET
type Executive struct {
	cfg   Config
	tasks []*Task

	// missBuf and shedBuf are the preallocated frame-result backing
	// stores: Step writes task names into them by index so the per-frame
	// path stays allocation-free (the safelint hotpath rule).
	missBuf []string
	shedBuf []string

	// Obs, when non-nil, receives the deadline-check span, the frame
	// cycles histogram and the miss/watchdog/shed counters; a deadline
	// miss or watchdog fire auto-dumps the flight recorder. obs record
	// paths are zero-allocation, so arming this does not perturb the
	// timing the executive enforces (experiment T13).
	Obs *obs.Obs

	// Prof/ProfSite, when armed, feed each frame's consumed cycles into
	// the continuous profiler at the rt frame site — the cycles-domain
	// sample stream whose live pWCET estimate is attributed against the
	// frame's WCET budget (the site carries cfg.FrameBudget as its
	// budget). prof record paths are zero-allocation like obs.
	Prof     *prof.Profiler
	ProfSite prof.SiteID

	consecutive []int  // per-task consecutive overruns
	degraded    []bool // per-task degraded flag
	highMode    bool
	cleanRun    int
}

// ErrNoTasks is returned when constructing an executive without tasks.
//
//safexplain:req REQ-WCET
var ErrNoTasks = errors.New("rt: no tasks")

// NewExecutive builds an executive over the task list. Task budgets must
// fit in the frame in normal mode; a schedule that cannot fit even on
// paper is a configuration error caught here, not at runtime.
//
//safexplain:req REQ-WCET
func NewExecutive(cfg Config, tasks ...*Task) (*Executive, error) {
	if len(tasks) == 0 {
		return nil, ErrNoTasks
	}
	cfg = cfg.withDefaults()
	var sum uint64
	for _, t := range tasks {
		if t.Run == nil {
			return nil, fmt.Errorf("rt: task %q has no Run", t.Name)
		}
		sum += t.Budget
	}
	if sum > cfg.FrameBudget {
		return nil, fmt.Errorf("rt: task budgets (%d) exceed frame budget (%d)", sum, cfg.FrameBudget)
	}
	return &Executive{
		cfg:         cfg,
		tasks:       tasks,
		missBuf:     make([]string, len(tasks)),
		shedBuf:     make([]string, len(tasks)),
		consecutive: make([]int, len(tasks)),
		degraded:    make([]bool, len(tasks)),
	}, nil
}

// FrameResult reports one frame's execution. Misses and Shed alias the
// executive's preallocated buffers and are overwritten by the next Step
// call — consume (or copy) them before stepping again.
//
//safexplain:req REQ-WCET
type FrameResult struct {
	Frame    int
	Used     uint64
	Misses   []string // tasks that overran their budget
	Shed     []string // tasks skipped by the mode switch
	Watchdog bool     // frame total exceeded FrameBudget
	HighMode bool     // mode during this frame
}

// Report aggregates a multi-frame run.
//
//safexplain:req REQ-WCET
type Report struct {
	Frames         int
	DeadlineMisses int
	WatchdogFires  int
	Degradations   int
	ShedSlots      int
	HighModeFrames int
	Utilization    float64 // mean used/FrameBudget
	PerTaskMisses  map[string]int
}

// String renders the report as a compact table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frames=%d misses=%d watchdog=%d degradations=%d shed=%d high-mode=%d util=%.3f",
		r.Frames, r.DeadlineMisses, r.WatchdogFires, r.Degradations, r.ShedSlots, r.HighModeFrames, r.Utilization)
	return b.String()
}

// Step executes one frame and returns its result. The body is the
// per-frame hot path: it writes into the preallocated miss/shed buffers
// instead of appending, so a frame costs zero heap allocations
// regardless of outcome (the obs tail below is itself allocation-free).
//
//safexplain:hotpath
//safexplain:wcet
func (e *Executive) Step(frame int) FrameResult {
	res := FrameResult{Frame: frame, HighMode: e.highMode}
	nMiss, nShed := 0, 0
	for i, t := range e.tasks { //safexplain:bounded task list frozen at construction
		if e.highMode && t.Criticality < e.cfg.MinCriticality {
			e.shedBuf[nShed] = t.Name
			nShed++
			continue
		}
		run := t.Run
		if e.degraded[i] && t.Degraded != nil {
			run = t.Degraded
		}
		used := run(frame) //safexplain:dynamic task Run/Degraded functions are fixed at construction and vetted per task
		res.Used += used
		if used > t.Budget {
			e.missBuf[nMiss] = t.Name
			nMiss++
			e.consecutive[i]++
			if e.consecutive[i] >= e.cfg.OverrunLimit && t.Degraded != nil && !e.degraded[i] {
				e.degraded[i] = true
			}
		} else {
			e.consecutive[i] = 0
		}
	}
	if nMiss > 0 {
		res.Misses = e.missBuf[:nMiss]
	}
	if nShed > 0 {
		res.Shed = e.shedBuf[:nShed]
	}
	if res.Used > e.cfg.FrameBudget {
		res.Watchdog = true
		e.highMode = true
		e.cleanRun = 0
	} else if e.highMode {
		e.cleanRun++
		if e.cleanRun >= e.cfg.RecoveryFrames {
			e.highMode = false
			e.cleanRun = 0
		}
	}
	e.Prof.Observe(e.ProfSite, res.Used)
	if o := e.Obs; o != nil {
		o.FrameCycles.ObserveExemplar(float64(res.Used), o.TraceID())
		o.DeadlineMisses.Add(uint64(len(res.Misses)))
		o.ShedSlots.Add(uint64(len(res.Shed)))
		o.Span(frame, obs.StageDeadline, int32(len(res.Misses)), float64(res.Used))
		o.TraceChild(obs.StageDeadline, int32(len(res.Misses)), float64(res.Used), o.TraceRoot())
		if res.Watchdog {
			o.WatchdogFires.Inc()
		}
		if len(res.Misses) > 0 || res.Watchdog {
			o.AutoDump("deadline-miss", frame)
		}
	}
	return res
}

// RunFrames executes n frames and aggregates the report.
func (e *Executive) RunFrames(n int) Report {
	rep := Report{Frames: n, PerTaskMisses: map[string]int{}}
	degradedBefore := e.degradedCount()
	var used uint64
	for f := 0; f < n; f++ {
		res := e.Step(f)
		used += res.Used
		rep.DeadlineMisses += len(res.Misses)
		for _, m := range res.Misses {
			rep.PerTaskMisses[m]++
		}
		rep.ShedSlots += len(res.Shed)
		if res.Watchdog {
			rep.WatchdogFires++
		}
		if res.HighMode {
			rep.HighModeFrames++
		}
	}
	rep.Degradations = e.degradedCount() - degradedBefore
	if n > 0 && e.cfg.FrameBudget > 0 {
		rep.Utilization = float64(used) / float64(uint64(n)*e.cfg.FrameBudget)
	}
	return rep
}

func (e *Executive) degradedCount() int {
	c := 0
	for _, d := range e.degraded {
		if d {
			c++
		}
	}
	return c
}

// Degraded reports whether the named task is running its degraded
// implementation.
func (e *Executive) Degraded(name string) bool {
	for i, t := range e.tasks {
		if t.Name == name {
			return e.degraded[i]
		}
	}
	return false
}

// HighMode reports whether the executive is in the high-criticality mode.
func (e *Executive) HighMode() bool { return e.highMode }
