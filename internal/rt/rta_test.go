package rt

import (
	"errors"
	"math"
	"strings"
	"testing"

	"safexplain/internal/prng"
)

func TestAnalyzeTextbookExample(t *testing.T) {
	// The classic three-task example (Burns & Wellings style):
	// T1: C=3 T=7, T2: C=3 T=12, T3: C=5 T=20.
	// R1=3; R2 = 3 + ceil(R2/7)*3 -> 6; R3 = 5 + ceil/7*3 + ceil/12*3 -> 20.
	tasks := []RTATask{
		{Name: "t1", C: 3, T: 7, Priority: 3},
		{Name: "t2", C: 3, T: 12, Priority: 2},
		{Name: "t3", C: 5, T: 20, Priority: 1},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 6, 20}
	for i, r := range res {
		if !r.Schedulable || r.Response != want[i] {
			t.Fatalf("task %s: response %d (ok=%v), want %d", r.Task.Name, r.Response, r.Schedulable, want[i])
		}
	}
}

func TestAnalyzeDetectsOverload(t *testing.T) {
	tasks := []RTATask{
		{Name: "hog", C: 9, T: 10, Priority: 2},
		{Name: "victim", C: 5, T: 20, Priority: 1},
	}
	res, err := Analyze(tasks)
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("expected ErrUnschedulable, got %v", err)
	}
	if res[0].Schedulable != true || res[1].Schedulable != false {
		t.Fatalf("results: %+v", res)
	}
}

func TestAnalyzeBlockingTerm(t *testing.T) {
	// Blocking inflates the response time additively at the fixed point.
	base := []RTATask{{Name: "a", C: 4, T: 20, Priority: 1}}
	withB := []RTATask{{Name: "a", C: 4, T: 20, B: 3, Priority: 1}}
	r1, err := Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(withB)
	if err != nil {
		t.Fatal(err)
	}
	if r2[0].Response != r1[0].Response+3 {
		t.Fatalf("blocking term wrong: %d vs %d", r2[0].Response, r1[0].Response)
	}
}

func TestAnalyzeExplicitDeadline(t *testing.T) {
	// D < T: schedulable at D=T but not at a tight D.
	ok := []RTATask{{Name: "a", C: 5, T: 100, D: 5, Priority: 1}}
	if _, err := Analyze(ok); err != nil {
		t.Fatal(err)
	}
	tight := []RTATask{
		{Name: "hp", C: 3, T: 10, Priority: 2},
		{Name: "a", C: 5, T: 100, D: 7, Priority: 1}, // R = 8 > 7
	}
	if _, err := Analyze(tight); !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("tight deadline accepted: %v", err)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Analyze([]RTATask{
		{Name: "a", C: 1, T: 10, Priority: 1},
		{Name: "b", C: 1, T: 10, Priority: 1},
	}); err == nil {
		t.Fatal("duplicate priorities accepted")
	}
	if _, err := Analyze([]RTATask{{Name: "a", C: 0, T: 10, Priority: 1}}); err == nil {
		t.Fatal("zero C accepted")
	}
}

func TestResponseMonotoneInInterference(t *testing.T) {
	// Property: adding a higher-priority task never decreases anyone's
	// response time.
	r := prng.New(60)
	for trial := 0; trial < 30; trial++ {
		low := RTATask{Name: "low", C: uint64(1 + r.Intn(5)), T: 1000, Priority: 1}
		hp1 := RTATask{Name: "h1", C: uint64(1 + r.Intn(5)), T: uint64(20 + r.Intn(50)), Priority: 2}
		hp2 := RTATask{Name: "h2", C: uint64(1 + r.Intn(5)), T: uint64(20 + r.Intn(50)), Priority: 3}
		res1, err1 := Analyze([]RTATask{low, hp1})
		res2, err2 := Analyze([]RTATask{low, hp1, hp2})
		if err1 != nil || err2 != nil {
			continue // overload cases are fine to skip; property is about schedulable sets
		}
		if res2[len(res2)-1].Response < res1[len(res1)-1].Response {
			t.Fatalf("trial %d: response decreased with more interference", trial)
		}
	}
}

func TestUtilization(t *testing.T) {
	u := Utilization([]RTATask{
		{C: 1, T: 4}, {C: 1, T: 2},
	})
	if math.Abs(u-0.75) > 1e-12 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestRenderRTA(t *testing.T) {
	res, err := Analyze([]RTATask{{Name: "solo", C: 2, T: 10, Priority: 1}})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRTA(res)
	if !strings.Contains(out, "solo") || !strings.Contains(out, "true") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestOverUtilizationNeverSchedulable(t *testing.T) {
	// Property: utilization > 1 is a sufficient condition for
	// unschedulability under any fixed-priority assignment.
	r := prng.New(70)
	for trial := 0; trial < 40; trial++ {
		var tasks []RTATask
		for i := 0; i < 3; i++ {
			tasks = append(tasks, RTATask{
				Name:     string(rune('a' + i)),
				C:        uint64(5 + r.Intn(20)),
				T:        uint64(10 + r.Intn(20)),
				Priority: i,
			})
		}
		if Utilization(tasks) <= 1 {
			continue
		}
		if _, err := Analyze(tasks); err == nil {
			t.Fatalf("trial %d: util %.2f reported schedulable", trial, Utilization(tasks))
		}
	}
}
