package safety

import (
	"math"
	"sync"

	"safexplain/internal/nn"
	"safexplain/internal/prng"
	"safexplain/internal/tensor"
)

// Fault injection. Two fault classes drive experiment T3:
//
//   - Hardware faults in the model memory: single-event upsets flip bits
//     in stored float32 weights. A flipped exponent bit can turn a small
//     weight into ±1e30 and destroy the model; a mantissa flip is often
//     benign. Patterns must contain both.
//   - Sensor faults: pixel-level corruption of the input (implemented in
//     internal/data; patterns see them through corrupted inputs).

// CorruptWeights returns a deep copy of net with nFlips single-bit flips
// at uniformly random (parameter, bit) positions. The original network is
// untouched.
func CorruptWeights(net *nn.Network, nFlips int, seed uint64) (*nn.Network, error) {
	c, err := net.Clone(net.ID + "/seu")
	if err != nil {
		return nil, err
	}
	r := prng.New(seed)
	params := c.Params()
	// Build a flat index over all scalars for a uniform choice.
	total := 0
	for _, p := range params {
		total += p.Value.Len()
	}
	for k := 0; k < nFlips; k++ {
		idx := r.Intn(total)
		for _, p := range params {
			if idx < p.Value.Len() {
				bit := uint(r.Intn(32))
				d := p.Value.Data()
				d[idx] = math.Float32frombits(math.Float32bits(d[idx]) ^ (1 << bit))
				break
			}
			idx -= p.Value.Len()
		}
	}
	return c, nil
}

// SensorFault corrupts a fraction of inputs: with probability prob, an
// input has nPixels of its pixels complemented. It returns a deterministic
// corruption function suitable for streaming evaluation. The returned
// function is safe for concurrent use: the shared random stream is guarded
// by a mutex, so parallel callers never race on it (though the
// input→corruption assignment then depends on call order).
func SensorFault(prob float64, nPixels int, seed uint64) func(x *tensor.Tensor) *tensor.Tensor {
	var mu sync.Mutex
	r := prng.New(seed)
	return func(x *tensor.Tensor) *tensor.Tensor {
		mu.Lock()
		defer mu.Unlock()
		if r.Float64() >= prob {
			return x
		}
		c := x.Clone()
		for k := 0; k < nPixels; k++ {
			i := r.Intn(c.Len())
			c.Data()[i] = 1 - c.Data()[i]
		}
		return c
	}
}

// StuckChannel wraps a channel so that after `after` calls it is "stuck
// at" a fixed class — the byzantine-component model used to show voters
// outvoting a dead channel.
type StuckChannel struct {
	C       Channel
	After   int
	StuckAt int

	calls int
}

// Name implements Channel.
func (s *StuckChannel) Name() string { return s.C.Name() + "/stuck" }

// Classify implements Channel.
func (s *StuckChannel) Classify(x *tensor.Tensor) int {
	s.calls++
	if s.calls > s.After {
		return s.StuckAt
	}
	return s.C.Classify(x)
}
