package safety

import "safexplain/internal/tensor"

// Assessment harness for experiments T3/T4/F2: stream a labelled dataset
// (optionally through a sensor-fault injector) into a pattern and tally
// outcome classes the way a FUSA analysis would:
//
//	correct    trusted output, right class         (mission success)
//	hazardous  trusted output, wrong class         (the dangerous case)
//	fallback   safe state / degraded mode engaged  (availability loss)
//
// plus degraded-mode accuracy for fail-operational patterns.

// Dataset is the labelled-sample stream (structurally nn.Dataset).
type Dataset interface {
	Len() int
	Sample(i int) (x *tensor.Tensor, label int)
}

// Assessment aggregates a pattern evaluation run.
type Assessment struct {
	Pattern string
	Level   IntegrityLevel
	N       int

	Correct   int // trusted and right
	Hazardous int // trusted and wrong — the number to drive to zero
	Fallbacks int // safe state / degraded mode

	// FallbackCorrect counts degraded-mode outputs that were right
	// (Simplex-style patterns only; 0 otherwise).
	FallbackCorrect int

	// ChannelCalls counts model executions, the pattern's compute cost.
	ChannelCalls int
}

// HazardRate is the hazardous fraction of all frames.
func (a Assessment) HazardRate() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Hazardous) / float64(a.N)
}

// Availability is the fraction of frames with a trusted (non-fallback)
// output.
func (a Assessment) Availability() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.N-a.Fallbacks) / float64(a.N)
}

// Accuracy is the correct fraction of all frames (fallbacks count against
// it; this is the mission-effectiveness view).
func (a Assessment) Accuracy() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.N)
}

// CallsPerFrame is the mean number of channel executions per decision.
func (a Assessment) CallsPerFrame() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.ChannelCalls) / float64(a.N)
}

// Assess streams ds through the pattern. corrupt, if non-nil, is applied
// to each input first (the sensor-fault injector). counters lists the
// Counting wrappers whose calls make up the pattern's cost; pass the
// wrappers you installed around the pattern's channels.
func Assess(p Pattern, ds Dataset, corrupt func(*tensor.Tensor) *tensor.Tensor, counters ...*Counting) Assessment {
	a := Assessment{Pattern: p.Name(), Level: p.Level()}
	before := 0
	for _, c := range counters {
		before += c.Calls
	}
	for i := 0; i < ds.Len(); i++ {
		x, label := ds.Sample(i)
		if corrupt != nil {
			x = corrupt(x)
		}
		d := p.Decide(x)
		a.N++
		switch {
		case d.Fallback:
			a.Fallbacks++
			if d.FallbackClass == label {
				a.FallbackCorrect++
			}
		case d.Class == label:
			a.Correct++
		default:
			a.Hazardous++
		}
	}
	after := 0
	for _, c := range counters {
		after += c.Calls
	}
	a.ChannelCalls = after - before
	return a
}

// CommonMode measures, over ds, how often two channels fail *identically*
// (both wrong with the same class) — the common-mode failure probability
// that diversity is supposed to reduce (experiment T4). It also returns
// the rate at which both are wrong in any way.
func CommonMode(a, b Channel, ds Dataset) (identicalWrong, bothWrong float64) {
	if ds.Len() == 0 {
		return 0, 0
	}
	nIdent, nBoth := 0, 0
	for i := 0; i < ds.Len(); i++ {
		x, label := ds.Sample(i)
		ca, cb := a.Classify(x), b.Classify(x)
		if ca != label && cb != label {
			nBoth++
			if ca == cb {
				nIdent++
			}
		}
	}
	return float64(nIdent) / float64(ds.Len()), float64(nBoth) / float64(ds.Len())
}
