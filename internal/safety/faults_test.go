package safety

import (
	"math"
	"sync"
	"testing"

	"safexplain/internal/data"
	"safexplain/internal/nn"
	"safexplain/internal/prng"
	"safexplain/internal/supervisor"
	"safexplain/internal/tensor"
)

// Integration fixture: a trained classifier on the railway case study plus
// a fitted monitor. Built once.
var (
	fxOnce  sync.Once
	fxNet   *nn.Network
	fxTrain *data.Set
	fxTest  *data.Set
	fxMon   *supervisor.Monitor
)

func fx(t testing.TB) (*nn.Network, *data.Set, *data.Set, *supervisor.Monitor) {
	t.Helper()
	fxOnce.Do(func() {
		set := data.Railway(data.Config{N: 270, Seed: 300, Noise: 0.05})
		fxTrain, fxTest = set.Split(0.75, 301)
		src := prng.New(302)
		fxNet = nn.NewNetwork("rail-cnn",
			nn.NewConv2D(1, 6, 3, 1, 1, src), nn.NewReLU(), nn.NewMaxPool2D(2, 2),
			nn.NewFlatten(), nn.NewDense(6*8*8, 24, src), nn.NewReLU(),
			nn.NewDense(24, set.NumClasses(), src))
		if _, _, err := nn.TrainClassifier(fxNet, fxTrain, nn.TrainConfig{
			Epochs: 10, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 303,
		}); err != nil {
			panic(err)
		}
		var err error
		fxMon, err = supervisor.NewMonitor(&supervisor.Mahalanobis{}, fxNet, fxTrain, 0.95)
		if err != nil {
			panic(err)
		}
	})
	return fxNet, fxTrain, fxTest, fxMon
}

func TestCorruptWeightsLeavesOriginal(t *testing.T) {
	net, _, _, _ := fx(t)
	origHash, err := nn.Hash(net)
	if err != nil {
		t.Fatal(err)
	}
	corrupted, err := CorruptWeights(net, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	afterHash, _ := nn.Hash(net)
	if origHash != afterHash {
		t.Fatal("CorruptWeights mutated the original network")
	}
	corrHash, _ := nn.Hash(corrupted)
	if corrHash == origHash {
		t.Fatal("corrupted copy is identical to the original")
	}
}

func TestCorruptWeightsFlipsExactlyRequestedBits(t *testing.T) {
	net, _, _, _ := fx(t)
	corrupted, err := CorruptWeights(net, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Count scalar positions that differ; multiple flips can hit one
	// scalar, so differing count is <= 5 and >= 1.
	diff := 0
	op, cp := net.Params(), corrupted.Params()
	for i := range op {
		for j := range op[i].Value.Data() {
			if math.Float32bits(op[i].Value.Data()[j]) != math.Float32bits(cp[i].Value.Data()[j]) {
				diff++
			}
		}
	}
	if diff == 0 || diff > 5 {
		t.Fatalf("%d scalars differ, want 1..5", diff)
	}
}

func TestCorruptWeightsDeterministic(t *testing.T) {
	net, _, _, _ := fx(t)
	a, err := CorruptWeights(net, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CorruptWeights(net, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := nn.Hash(a)
	hb, _ := nn.Hash(b)
	if ha != hb {
		t.Fatal("same seed must give the same corruption")
	}
}

func TestCorruptWeightsByteIdentical(t *testing.T) {
	// Stronger than hash equality: the canonical serialized images of two
	// same-seed corruptions must match byte for byte.
	net, _, _, _ := fx(t)
	a, err := CorruptWeights(net, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CorruptWeights(net, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := nn.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := nn.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ba) != len(bb) {
		t.Fatalf("image sizes differ: %d vs %d", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("same-seed corruptions diverge at byte %d", i)
		}
	}
	// A different seed must diverge.
	c, err := CorruptWeights(net, 15, 8)
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := nn.Marshal(c)
	same := len(bc) == len(ba)
	if same {
		for i := range ba {
			if ba[i] != bc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestStuckChannelAfterZeroSticksImmediately(t *testing.T) {
	// After == 0 means stuck from the very first call: calls is
	// incremented before the comparison, so call 1 already exceeds 0.
	healthy := FuncChannel{ID: "const", F: func(*tensor.Tensor) int { return 1 }}
	s := &StuckChannel{C: healthy, After: 0, StuckAt: 2}
	x := tensor.New(1, data.Side, data.Side)
	for i := 0; i < 5; i++ {
		if got := s.Classify(x); got != 2 {
			t.Fatalf("call %d: class %d, want stuck class 2", i+1, got)
		}
	}
	// After == 1 passes through exactly one healthy call first.
	s2 := &StuckChannel{C: healthy, After: 1, StuckAt: 2}
	if got := s2.Classify(x); got != 1 {
		t.Fatalf("first call: class %d, want healthy 1", got)
	}
	if got := s2.Classify(x); got != 2 {
		t.Fatalf("second call: class %d, want stuck 2", got)
	}
}

func TestSensorFaultConcurrentUse(t *testing.T) {
	// The corruption function shares one seeded stream across callers; it
	// must be race-free under concurrent streaming evaluation (run with
	// -race to enforce).
	corrupt := SensorFault(0.5, 10, 9)
	x := tensor.New(1, data.Side, data.Side)
	var wg sync.WaitGroup
	hits := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if corrupt(x) != x {
					hits[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	rate := float64(total) / (8 * 200)
	if math.Abs(rate-0.5) > 0.08 {
		t.Fatalf("concurrent fault rate %v, want ~0.5", rate)
	}
}

func TestSensorFaultRate(t *testing.T) {
	corrupt := SensorFault(0.5, 10, 4)
	x := tensor.New(1, data.Side, data.Side)
	hit := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if corrupt(x) != x { // corrupted inputs are fresh clones
			hit++
		}
	}
	rate := float64(hit) / n
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("fault rate %v, want ~0.5", rate)
	}
	// prob 0 never corrupts.
	never := SensorFault(0, 10, 5)
	for i := 0; i < 100; i++ {
		if never(x) != x {
			t.Fatal("prob 0 must never corrupt")
		}
	}
}

func TestPatternLadderUnderFaults(t *testing.T) {
	// The pattern ladder ordering claim of the paper (T3 in miniature):
	// under heavy weight corruption, the supervised/voted patterns must
	// yield a hazard rate no worse than the bare channel, and the voter
	// should cut it substantially.
	net, train, test, mon := fx(t)
	corrupted, err := CorruptWeights(net, 60, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Diverse healthy replicas for voting.
	src := prng.New(400)
	replica := func(seed uint64) *nn.Network {
		n2 := nn.NewNetwork("replica",
			nn.NewConv2D(1, 6, 3, 1, 1, src), nn.NewReLU(), nn.NewMaxPool2D(2, 2),
			nn.NewFlatten(), nn.NewDense(6*8*8, 24, src), nn.NewReLU(),
			nn.NewDense(24, 3, src))
		if _, _, err := nn.TrainClassifier(n2, train, nn.TrainConfig{
			Epochs: 6, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: seed,
		}); err != nil {
			t.Fatal(err)
		}
		return n2
	}
	r1, r2 := replica(401), replica(402)

	bare := Assess(SingleChannel{C: NetChannel{Net: corrupted}}, test, nil)
	tmr := Assess(TMR{
		A: NetChannel{Net: corrupted},
		B: NetChannel{Net: r1},
		C: NetChannel{Net: r2},
	}, test, nil)
	sup := Assess(SupervisedChannel{C: NetChannel{Net: corrupted}, Net: net, Mon: mon}, test, nil)

	if tmr.HazardRate() > bare.HazardRate() {
		t.Fatalf("TMR hazard %v worse than bare %v", tmr.HazardRate(), bare.HazardRate())
	}
	if sup.HazardRate() > bare.HazardRate()+1e-9 {
		t.Fatalf("supervised hazard %v worse than bare %v", sup.HazardRate(), bare.HazardRate())
	}
	// With two healthy replicas the voter should essentially mask the
	// corrupted channel.
	healthy := Assess(SingleChannel{C: NetChannel{Net: r1}}, test, nil)
	if tmr.HazardRate() > healthy.HazardRate()+0.1 {
		t.Fatalf("TMR hazard %v far above healthy channel %v", tmr.HazardRate(), healthy.HazardRate())
	}
}

func TestSimplexDegradesInsteadOfStopping(t *testing.T) {
	net, _, test, mon := fx(t)
	// Fallback: a verified heuristic — call everything "obstacle" (the
	// conservative answer for a railway).
	fallback := FuncChannel{ID: "conservative", F: func(*tensor.Tensor) int { return data.RailObstacle }}
	p := Simplex{Primary: NetChannel{Net: net}, Net: net, Mon: mon, Fallback: fallback}
	// On gross OOD the monitor must disengage the primary and the decision
	// must carry the fallback class.
	ood := data.WithInversion(test)
	sawFallback := false
	for i := 0; i < ood.Len(); i++ {
		x, _ := ood.Sample(i)
		d := p.Decide(x)
		if d.Fallback {
			sawFallback = true
			if d.FallbackClass != data.RailObstacle {
				t.Fatalf("fallback class %d, want %d", d.FallbackClass, data.RailObstacle)
			}
		}
	}
	if !sawFallback {
		t.Fatal("simplex never engaged the fallback on gross OOD")
	}
}

func TestDiversityReducesCommonMode(t *testing.T) {
	// T4 in miniature: two independently trained (diverse) channels must
	// have a lower identical-failure rate than two copies of one model,
	// evaluated under noise that causes errors.
	net, train, test, _ := fx(t)
	src := prng.New(500)
	diverse := nn.NewNetwork("diverse",
		nn.NewConv2D(1, 4, 3, 1, 1, src), nn.NewReLU(), nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(), nn.NewDense(4*8*8, 16, src), nn.NewReLU(),
		nn.NewDense(16, 3, src))
	if _, _, err := nn.TrainClassifier(diverse, train, nn.TrainConfig{
		Epochs: 8, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 501,
	}); err != nil {
		t.Fatal(err)
	}
	noisy := data.WithGaussianNoise(test, 0.25, 502)
	identSame, _ := CommonMode(NetChannel{Net: net}, NetChannel{Net: net}, noisy)
	identDiverse, _ := CommonMode(NetChannel{Net: net}, NetChannel{Net: diverse}, noisy)
	if identSame == 0 {
		t.Skip("no failures induced; noise too weak")
	}
	if identDiverse >= identSame {
		t.Fatalf("diverse identical-failure rate %v not below identical-redundancy %v",
			identDiverse, identSame)
	}
}
