// Package safety implements the paper's second pillar: "alternative and
// increasingly sophisticated design safety patterns for DL with varying
// criticality and fault tolerance requirements".
//
// A Pattern wraps one or more inference channels (DL models, quantized
// engines, or verified heuristic components) plus optional supervisors into
// an architecture with a defined failure behaviour. The catalog covers the
// classical redundancy ladder, each rung targeting a higher integrity
// level:
//
//	SingleChannel      QM    bare model, no containment
//	SupervisedChannel  SIL1  model + trust monitor, reject to safe state
//	DoerChecker        SIL2  model + independent plausibility checker
//	DualDiverse        SIL3  2oo2: two diverse channels must agree
//	TMR                SIL3  2oo3: majority vote of three channels
//	Simplex            SIL4  monitored DL primary + verified fallback
//
// The fault-injection half of the package (faults.go) corrupts weights
// (single-event upsets) and sensors so experiment T3 can measure each
// pattern's residual hazardous-failure rate against its cost.
package safety

import (
	"fmt"

	"safexplain/internal/nn"
	"safexplain/internal/supervisor"
	"safexplain/internal/tensor"
)

// IntegrityLevel is the criticality scale, patterned on IEC 61508 SILs
// (ISO 26262 ASILs map onto the same ladder).
type IntegrityLevel int

// Integrity levels from uncritical (QM) to the most critical (SIL4).
const (
	QM IntegrityLevel = iota
	SIL1
	SIL2
	SIL3
	SIL4
)

// String returns the conventional level name.
func (l IntegrityLevel) String() string {
	switch l {
	case QM:
		return "QM"
	case SIL1, SIL2, SIL3, SIL4:
		return fmt.Sprintf("SIL%d", int(l))
	default:
		return fmt.Sprintf("IntegrityLevel(%d)", int(l))
	}
}

// Channel is one inference channel: anything that maps an input to a class.
type Channel interface {
	Name() string
	Classify(x *tensor.Tensor) int
}

// NetChannel adapts an nn.Network.
type NetChannel struct{ Net *nn.Network }

// Name implements Channel.
func (c NetChannel) Name() string { return c.Net.ID }

// Classify implements Channel.
func (c NetChannel) Classify(x *tensor.Tensor) int {
	class, _ := c.Net.Predict(x)
	return class
}

// FuncChannel adapts a plain function — used for verified heuristic
// fallback components and for test stubs.
type FuncChannel struct {
	ID string
	F  func(x *tensor.Tensor) int
}

// Name implements Channel.
func (c FuncChannel) Name() string { return c.ID }

// Classify implements Channel.
func (c FuncChannel) Classify(x *tensor.Tensor) int { return c.F(x) }

// Counting wraps a channel and counts invocations, giving the experiments
// their per-decision compute-cost metric.
type Counting struct {
	C     Channel
	Calls int
}

// Name implements Channel.
func (c *Counting) Name() string { return c.C.Name() }

// Classify implements Channel.
func (c *Counting) Classify(x *tensor.Tensor) int {
	c.Calls++
	return c.C.Classify(x)
}

// Decision is one safety-pattern output.
type Decision struct {
	// Class is the delivered classification; meaningful only when
	// Fallback is false.
	Class int
	// Fallback reports that the pattern withheld the DL output and
	// commanded the safe state (or the fallback channel's output, for
	// patterns that degrade rather than stop — see FallbackClass).
	Fallback bool
	// FallbackClass holds the degraded-mode output for patterns with a
	// fail-operational fallback channel (Simplex); -1 otherwise.
	FallbackClass int
	// Reason explains the decision for the evidence log.
	Reason string
}

// Pattern is a design safety pattern.
type Pattern interface {
	Name() string
	// Level is the integrity level the pattern architecture targets.
	Level() IntegrityLevel
	Decide(x *tensor.Tensor) Decision
}

// SingleChannel passes the model output through — the QM baseline every
// comparison needs.
type SingleChannel struct{ C Channel }

// Name implements Pattern.
func (p SingleChannel) Name() string { return "single-channel" }

// Level implements Pattern.
func (p SingleChannel) Level() IntegrityLevel { return QM }

// Decide implements Pattern.
func (p SingleChannel) Decide(x *tensor.Tensor) Decision {
	return Decision{Class: p.C.Classify(x), FallbackClass: -1, Reason: "unsupervised output"}
}

// SupervisedChannel rejects to the safe state when the trust monitor
// flags the input.
type SupervisedChannel struct {
	C   Channel
	Net *nn.Network // the network the monitor was fitted against
	Mon *supervisor.Monitor
}

// Name implements Pattern.
func (p SupervisedChannel) Name() string { return "supervised-channel" }

// Level implements Pattern.
func (p SupervisedChannel) Level() IntegrityLevel { return SIL1 }

// Decide implements Pattern.
func (p SupervisedChannel) Decide(x *tensor.Tensor) Decision {
	if !p.Mon.Trusted(p.Net, x) {
		return Decision{Fallback: true, FallbackClass: -1, Reason: "supervisor rejected input"}
	}
	return Decision{Class: p.C.Classify(x), FallbackClass: -1, Reason: "supervisor accepted input"}
}

// Checker is an independent plausibility check over (input, proposed
// class). Independence from the doer is the pattern's safety argument, so
// checkers should not share the doer's model.
type Checker interface {
	Name() string
	Plausible(x *tensor.Tensor, class int) bool
}

// FuncChecker adapts a function to Checker.
type FuncChecker struct {
	ID string
	F  func(x *tensor.Tensor, class int) bool
}

// Name implements Checker.
func (c FuncChecker) Name() string { return c.ID }

// Plausible implements Checker.
func (c FuncChecker) Plausible(x *tensor.Tensor, class int) bool { return c.F(x, class) }

// DoerChecker runs the doer and vetoes implausible outputs.
type DoerChecker struct {
	Doer    Channel
	Checker Checker
}

// Name implements Pattern.
func (p DoerChecker) Name() string { return "doer-checker" }

// Level implements Pattern.
func (p DoerChecker) Level() IntegrityLevel { return SIL2 }

// Decide implements Pattern.
func (p DoerChecker) Decide(x *tensor.Tensor) Decision {
	class := p.Doer.Classify(x)
	if !p.Checker.Plausible(x, class) {
		return Decision{Fallback: true, FallbackClass: -1,
			Reason: fmt.Sprintf("checker %s vetoed class %d", p.Checker.Name(), class)}
	}
	return Decision{Class: class, FallbackClass: -1, Reason: "checker accepted"}
}

// DualDiverse is the 2oo2 pattern: two (ideally diverse) channels must
// agree; disagreement commands the safe state.
type DualDiverse struct {
	A, B Channel
}

// Name implements Pattern.
func (p DualDiverse) Name() string { return "dual-diverse-2oo2" }

// Level implements Pattern.
func (p DualDiverse) Level() IntegrityLevel { return SIL3 }

// Decide implements Pattern.
func (p DualDiverse) Decide(x *tensor.Tensor) Decision {
	a := p.A.Classify(x)
	b := p.B.Classify(x)
	if a != b {
		return Decision{Fallback: true, FallbackClass: -1,
			Reason: fmt.Sprintf("channels disagree (%d vs %d)", a, b)}
	}
	return Decision{Class: a, FallbackClass: -1, Reason: "channels agree"}
}

// TMR is the 2oo3 triple-modular-redundancy voter: any majority wins; a
// three-way split commands the safe state.
type TMR struct {
	A, B, C Channel
}

// Name implements Pattern.
func (p TMR) Name() string { return "tmr-2oo3" }

// Level implements Pattern.
func (p TMR) Level() IntegrityLevel { return SIL3 }

// Decide implements Pattern.
func (p TMR) Decide(x *tensor.Tensor) Decision {
	a, b, c := p.A.Classify(x), p.B.Classify(x), p.C.Classify(x)
	switch {
	case a == b || a == c:
		return Decision{Class: a, FallbackClass: -1, Reason: "majority vote"}
	case b == c:
		return Decision{Class: b, FallbackClass: -1, Reason: "majority vote"}
	default:
		return Decision{Fallback: true, FallbackClass: -1, Reason: "no majority"}
	}
}

// NVersion is the generalized k-out-of-n voter: n independently developed
// channels vote, and a class is delivered only when at least K channels
// agree on it (ties resolved toward the lowest class index for
// determinism). DualDiverse and TMR are its 2oo2 and 2oo3 special cases;
// higher n buys fault masking at linear compute cost — the "increasingly
// sophisticated" end of the pattern ladder.
type NVersion struct {
	Channels []Channel
	K        int // required agreement (e.g. 3 of 5)
}

// Name implements Pattern.
func (p NVersion) Name() string {
	return fmt.Sprintf("nversion-%doo%d", p.K, len(p.Channels))
}

// Level implements Pattern.
func (p NVersion) Level() IntegrityLevel {
	if p.K > (len(p.Channels)+1)/2 {
		return SIL4
	}
	return SIL3
}

// Decide implements Pattern.
func (p NVersion) Decide(x *tensor.Tensor) Decision {
	votes := map[int]int{}
	for _, c := range p.Channels {
		votes[c.Classify(x)]++
	}
	best, bestVotes := -1, 0
	for class, n := range votes {
		if n > bestVotes || (n == bestVotes && (best == -1 || class < best)) {
			best, bestVotes = class, n
		}
	}
	if bestVotes < p.K {
		return Decision{Fallback: true, FallbackClass: -1,
			Reason: fmt.Sprintf("no class reached %d/%d votes", p.K, len(p.Channels))}
	}
	return Decision{Class: best, FallbackClass: -1,
		Reason: fmt.Sprintf("%d/%d votes", bestVotes, len(p.Channels))}
}

// Simplex is the fail-operational architecture: a high-performance DL
// primary guarded by a trust monitor, with a verified (simple,
// deterministic) fallback channel that takes over instead of stopping —
// the decision logic of the classical Simplex architecture.
type Simplex struct {
	Primary  Channel
	Net      *nn.Network // network the monitor was fitted against
	Mon      *supervisor.Monitor
	Fallback Channel
}

// Name implements Pattern.
func (p Simplex) Name() string { return "simplex" }

// Level implements Pattern.
func (p Simplex) Level() IntegrityLevel { return SIL4 }

// Decide implements Pattern.
func (p Simplex) Decide(x *tensor.Tensor) Decision {
	if p.Mon.Trusted(p.Net, x) {
		return Decision{Class: p.Primary.Classify(x), FallbackClass: -1, Reason: "primary trusted"}
	}
	return Decision{
		Fallback:      true,
		FallbackClass: p.Fallback.Classify(x),
		Reason:        "monitor distrusts primary; verified fallback engaged",
	}
}
