package safety

import (
	"fmt"
	"strings"
	"testing"

	"safexplain/internal/tensor"
)

// stub returns a FuncChannel answering a fixed class.
func stub(id string, class int) Channel {
	return FuncChannel{ID: id, F: func(*tensor.Tensor) int { return class }}
}

var anyInput = tensor.New(4)

func TestIntegrityLevelString(t *testing.T) {
	cases := map[IntegrityLevel]string{
		QM: "QM", SIL1: "SIL1", SIL4: "SIL4", IntegrityLevel(9): "IntegrityLevel(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestSingleChannelPassThrough(t *testing.T) {
	p := SingleChannel{C: stub("m", 2)}
	d := p.Decide(anyInput)
	if d.Fallback || d.Class != 2 {
		t.Fatalf("decision = %+v", d)
	}
	if p.Level() != QM {
		t.Fatal("single channel should be QM")
	}
}

func TestDoerCheckerVeto(t *testing.T) {
	veto := FuncChecker{ID: "veto-1", F: func(_ *tensor.Tensor, class int) bool {
		return class != 1
	}}
	p := DoerChecker{Doer: stub("m", 1), Checker: veto}
	d := p.Decide(anyInput)
	if !d.Fallback {
		t.Fatal("checker veto must force fallback")
	}
	if !strings.Contains(d.Reason, "veto") {
		t.Fatalf("reason %q should mention the veto", d.Reason)
	}
	p2 := DoerChecker{Doer: stub("m", 0), Checker: veto}
	if d := p2.Decide(anyInput); d.Fallback || d.Class != 0 {
		t.Fatalf("accepted decision = %+v", d)
	}
}

func TestDualDiverseAgreement(t *testing.T) {
	agree := DualDiverse{A: stub("a", 3), B: stub("b", 3)}
	if d := agree.Decide(anyInput); d.Fallback || d.Class != 3 {
		t.Fatalf("agreement decision = %+v", d)
	}
	disagree := DualDiverse{A: stub("a", 3), B: stub("b", 1)}
	if d := disagree.Decide(anyInput); !d.Fallback {
		t.Fatal("disagreement must force fallback")
	}
}

func TestTMRVoting(t *testing.T) {
	cases := []struct {
		a, b, c  int
		fallback bool
		class    int
	}{
		{1, 1, 1, false, 1},
		{1, 1, 2, false, 1},
		{2, 1, 1, false, 1}, // b==c majority
		{1, 2, 1, false, 1}, // a==c majority
		{0, 1, 2, true, 0},  // three-way split
	}
	for _, c := range cases {
		p := TMR{A: stub("a", c.a), B: stub("b", c.b), C: stub("c", c.c)}
		d := p.Decide(anyInput)
		if d.Fallback != c.fallback {
			t.Fatalf("votes (%d,%d,%d): fallback = %v", c.a, c.b, c.c, d.Fallback)
		}
		if !c.fallback && d.Class != c.class {
			t.Fatalf("votes (%d,%d,%d): class = %d, want %d", c.a, c.b, c.c, d.Class, c.class)
		}
	}
}

func TestTMROutvotesStuckChannel(t *testing.T) {
	stuck := &StuckChannel{C: stub("a", 1), After: 2, StuckAt: 9}
	p := TMR{A: stuck, B: stub("b", 1), C: stub("c", 1)}
	for i := 0; i < 10; i++ {
		d := p.Decide(anyInput)
		if d.Fallback || d.Class != 1 {
			t.Fatalf("decision %d = %+v; voter failed to mask stuck channel", i, d)
		}
	}
}

func TestCountingChannel(t *testing.T) {
	c := &Counting{C: stub("m", 0)}
	p := TMR{A: c, B: stub("b", 0), C: stub("c", 0)}
	for i := 0; i < 5; i++ {
		p.Decide(anyInput)
	}
	if c.Calls != 5 {
		t.Fatalf("Calls = %d, want 5", c.Calls)
	}
}

// fixedSet is a tiny in-memory dataset for the assessment harness.
type fixedSet struct {
	labels []int
}

func (f fixedSet) Len() int { return len(f.labels) }
func (f fixedSet) Sample(i int) (*tensor.Tensor, int) {
	x := tensor.New(4)
	x.Data()[0] = float32(i) // make inputs distinct
	return x, f.labels[i]
}

func TestAssessTallies(t *testing.T) {
	// Channel always answers 1; labels half 1 (correct), half 0
	// (hazardous, since SingleChannel never falls back).
	ds := fixedSet{labels: []int{1, 1, 0, 0, 1, 0}}
	c := &Counting{C: stub("m", 1)}
	a := Assess(SingleChannel{C: c}, ds, nil, c)
	if a.N != 6 || a.Correct != 3 || a.Hazardous != 3 || a.Fallbacks != 0 {
		t.Fatalf("assessment = %+v", a)
	}
	if a.HazardRate() != 0.5 || a.Availability() != 1 || a.Accuracy() != 0.5 {
		t.Fatalf("rates: hazard %v avail %v acc %v", a.HazardRate(), a.Availability(), a.Accuracy())
	}
	if a.CallsPerFrame() != 1 {
		t.Fatalf("calls/frame = %v", a.CallsPerFrame())
	}
}

func TestAssessFallbackCorrect(t *testing.T) {
	// A pattern that always degrades to a fallback channel answering 1.
	p := fallbackPattern{class: 1}
	ds := fixedSet{labels: []int{1, 0, 1}}
	a := Assess(p, ds, nil)
	if a.Fallbacks != 3 || a.FallbackCorrect != 2 || a.Hazardous != 0 {
		t.Fatalf("assessment = %+v", a)
	}
	if a.Availability() != 0 {
		t.Fatalf("availability = %v, want 0", a.Availability())
	}
}

type fallbackPattern struct{ class int }

func (f fallbackPattern) Name() string          { return "always-fallback" }
func (f fallbackPattern) Level() IntegrityLevel { return SIL1 }
func (f fallbackPattern) Decide(*tensor.Tensor) Decision {
	return Decision{Fallback: true, FallbackClass: f.class}
}

func TestAssessZeroLength(t *testing.T) {
	a := Assess(SingleChannel{C: stub("m", 0)}, fixedSet{}, nil)
	if a.HazardRate() != 0 || a.Availability() != 0 || a.CallsPerFrame() != 0 {
		t.Fatal("zero-length dataset must give zero rates, not NaN")
	}
}

func TestCommonMode(t *testing.T) {
	// a answers 9 always; b answers 9 for even indices, 8 for odd. Labels
	// are all 0, so both are always wrong; identical on even indices.
	parity := FuncChannel{ID: "b", F: func(x *tensor.Tensor) int {
		if int(x.Data()[0])%2 == 0 {
			return 9
		}
		return 8
	}}
	ds := fixedSet{labels: []int{0, 0, 0, 0}}
	ident, both := CommonMode(stub("a", 9), parity, ds)
	if both != 1 {
		t.Fatalf("bothWrong = %v, want 1", both)
	}
	if ident != 0.5 {
		t.Fatalf("identicalWrong = %v, want 0.5", ident)
	}
	if i, b := CommonMode(stub("a", 0), stub("b", 0), fixedSet{}); i != 0 || b != 0 {
		t.Fatal("empty dataset must give zeros")
	}
}

func TestNVersionVoting(t *testing.T) {
	mk := func(classes ...int) []Channel {
		var cs []Channel
		for i, c := range classes {
			cs = append(cs, stub(fmt.Sprintf("c%d", i), c))
		}
		return cs
	}
	cases := []struct {
		classes  []int
		k        int
		fallback bool
		class    int
	}{
		{[]int{1, 1, 1, 2, 3}, 3, false, 1},
		{[]int{1, 1, 2, 2, 3}, 3, true, 0},  // no class reaches 3
		{[]int{1, 1, 2, 2, 3}, 2, false, 1}, // tie at 2 votes: lowest class wins
		{[]int{0, 1, 2}, 1, false, 0},
		{[]int{2, 2}, 2, false, 2},
	}
	for _, c := range cases {
		p := NVersion{Channels: mk(c.classes...), K: c.k}
		d := p.Decide(anyInput)
		if d.Fallback != c.fallback {
			t.Fatalf("votes %v k=%d: fallback=%v", c.classes, c.k, d.Fallback)
		}
		if !c.fallback && d.Class != c.class {
			t.Fatalf("votes %v k=%d: class=%d want %d", c.classes, c.k, d.Class, c.class)
		}
	}
}

func TestNVersionLevels(t *testing.T) {
	p3of5 := NVersion{Channels: make([]Channel, 5), K: 3}
	if p3of5.Level() != SIL3 {
		t.Fatalf("3oo5 level = %v", p3of5.Level())
	}
	p4of5 := NVersion{Channels: make([]Channel, 5), K: 4}
	if p4of5.Level() != SIL4 {
		t.Fatalf("4oo5 level = %v", p4of5.Level())
	}
	if name := p3of5.Name(); name != "nversion-3oo5" {
		t.Fatalf("name = %q", name)
	}
}

func TestNVersionMatchesTMRBehaviour(t *testing.T) {
	// 2oo3 NVersion must agree with the dedicated TMR on every vote split.
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 3; c++ {
				nv := NVersion{Channels: []Channel{stub("a", a), stub("b", b), stub("c", c)}, K: 2}
				tm := TMR{A: stub("a", a), B: stub("b", b), C: stub("c", c)}
				dn := nv.Decide(anyInput)
				dt := tm.Decide(anyInput)
				if dn.Fallback != dt.Fallback {
					t.Fatalf("votes (%d,%d,%d): nversion fallback %v, tmr %v",
						a, b, c, dn.Fallback, dt.Fallback)
				}
				if !dn.Fallback && dn.Class != dt.Class {
					t.Fatalf("votes (%d,%d,%d): nversion %d, tmr %d", a, b, c, dn.Class, dt.Class)
				}
			}
		}
	}
}

func TestChannelAndPatternNames(t *testing.T) {
	// Every component must carry a stable, non-empty identity — names feed
	// the evidence log.
	if (FuncChannel{ID: "fc"}).Name() != "fc" {
		t.Fatal("FuncChannel name")
	}
	c := &Counting{C: stub("inner", 0)}
	if c.Name() != "inner" {
		t.Fatal("Counting must pass through the wrapped name")
	}
	sc := &StuckChannel{C: stub("x", 0)}
	if sc.Name() != "x/stuck" {
		t.Fatalf("StuckChannel name %q", sc.Name())
	}
	if (SupervisedChannel{}).Name() != "supervised-channel" ||
		(SupervisedChannel{}).Level() != SIL1 {
		t.Fatal("SupervisedChannel identity")
	}
	if (DoerChecker{}).Name() != "doer-checker" || (DoerChecker{}).Level() != SIL2 {
		t.Fatal("DoerChecker identity")
	}
	if (DualDiverse{}).Name() != "dual-diverse-2oo2" || (DualDiverse{}).Level() != SIL3 {
		t.Fatal("DualDiverse identity")
	}
	if (TMR{}).Name() != "tmr-2oo3" || (TMR{}).Level() != SIL3 {
		t.Fatal("TMR identity")
	}
	if (Simplex{}).Name() != "simplex" || (Simplex{}).Level() != SIL4 {
		t.Fatal("Simplex identity")
	}
	if (SingleChannel{}).Name() != "single-channel" {
		t.Fatal("SingleChannel identity")
	}
	if (FuncChecker{ID: "ck"}).Name() != "ck" {
		t.Fatal("FuncChecker identity")
	}
}

func TestAssessmentAccuracyWithFallbacks(t *testing.T) {
	// Accuracy counts only trusted-correct outcomes; fallbacks count
	// against it even when the degraded answer happens to be right.
	p := fallbackPattern{class: 1}
	a := Assess(p, fixedSet{labels: []int{1, 1}}, nil)
	if a.Accuracy() != 0 {
		t.Fatalf("accuracy %v, want 0 for all-fallback runs", a.Accuracy())
	}
}
