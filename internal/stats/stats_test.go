package stats

import (
	"math"
	"testing"
	"testing/quick"

	"safexplain/internal/prng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestCoV(t *testing.T) {
	if CoV([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant sample should have CoV 0")
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean CoV should be 0 by convention")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v,%v)", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{1, 2}, 0.5); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	// Unsorted input must give the same answer.
	if got := Quantile([]float64{5, 1, 4, 2, 3}, 0.5); got != 3 {
		t.Errorf("unsorted median = %v, want 3", got)
	}
}

func TestQuantileClampsQ(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 3 {
		t.Fatal("q outside [0,1] should clamp")
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7, 2}
	qs := []float64{0.1, 0.5, 0.9}
	got := Quantiles(xs, qs)
	for i, q := range qs {
		if want := Quantile(xs, q); !almostEqual(got[i], want, 1e-12) {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestAUROCPerfectSeparation(t *testing.T) {
	neg := []float64{0.1, 0.2, 0.3}
	pos := []float64{0.7, 0.8, 0.9}
	auc, err := AUROC(neg, pos)
	if err != nil || auc != 1 {
		t.Fatalf("AUROC = %v, %v; want 1", auc, err)
	}
	// Inverted detector.
	auc, _ = AUROC(pos, neg)
	if auc != 0 {
		t.Fatalf("inverted AUROC = %v, want 0", auc)
	}
}

func TestAUROCTies(t *testing.T) {
	// All scores identical: AUROC must be exactly 0.5.
	neg := []float64{1, 1, 1}
	pos := []float64{1, 1}
	auc, err := AUROC(neg, pos)
	if err != nil || !almostEqual(auc, 0.5, 1e-12) {
		t.Fatalf("tied AUROC = %v, want 0.5", auc)
	}
}

func TestAUROCRandomScoresNearHalf(t *testing.T) {
	r := prng.New(1)
	neg := make([]float64, 2000)
	pos := make([]float64, 2000)
	for i := range neg {
		neg[i] = r.Float64()
		pos[i] = r.Float64()
	}
	auc, err := AUROC(neg, pos)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUROC = %v, want ~0.5", auc)
	}
}

func TestAUROCDegenerate(t *testing.T) {
	if _, err := AUROC(nil, []float64{1}); err != ErrDegenerate {
		t.Fatal("expected ErrDegenerate for empty class")
	}
}

func TestAUROCInvariantToMonotoneTransform(t *testing.T) {
	check := func(seed uint64) bool {
		r := prng.New(seed)
		neg := make([]float64, 50)
		pos := make([]float64, 50)
		for i := range neg {
			neg[i] = r.NormFloat64()
			pos[i] = r.NormFloat64() + 1
		}
		a1, _ := AUROC(neg, pos)
		// Apply a strictly increasing transform; AUROC is rank-based so it
		// must not change.
		tneg := make([]float64, len(neg))
		tpos := make([]float64, len(pos))
		for i := range neg {
			tneg[i] = math.Exp(neg[i])
			tpos[i] = math.Exp(pos[i])
		}
		a2, _ := AUROC(tneg, tpos)
		return almostEqual(a1, a2, 1e-12)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFPRAtTPR(t *testing.T) {
	// Perfect detector: zero FPR at any TPR.
	neg := []float64{0.1, 0.2}
	pos := []float64{0.8, 0.9}
	fpr, err := FPRAtTPR(neg, pos, 0.95)
	if err != nil || fpr != 0 {
		t.Fatalf("FPR = %v, %v; want 0", fpr, err)
	}
	// Useless detector (identical scores): FPR 1 at TPR >= threshold.
	fpr, _ = FPRAtTPR([]float64{1, 1, 1}, []float64{1, 1, 1}, 0.95)
	if fpr != 1 {
		t.Fatalf("degenerate FPR = %v, want 1", fpr)
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 8 TP, 2 FN, 1 FP, 9 TN.
	for i := 0; i < 8; i++ {
		c.Add(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Add(false, true)
	}
	c.Add(true, false)
	for i := 0; i < 9; i++ {
		c.Add(false, false)
	}
	if !almostEqual(c.TPR(), 0.8, 1e-12) {
		t.Errorf("TPR = %v", c.TPR())
	}
	if !almostEqual(c.FPR(), 0.1, 1e-12) {
		t.Errorf("FPR = %v", c.FPR())
	}
	if !almostEqual(c.Precision(), 8.0/9.0, 1e-12) {
		t.Errorf("Precision = %v", c.Precision())
	}
	if !almostEqual(c.Accuracy(), 17.0/20.0, 1e-12) {
		t.Errorf("Accuracy = %v", c.Accuracy())
	}
	p, r := 8.0/9.0, 0.8
	if !almostEqual(c.F1(), 2*p*r/(p+r), 1e-12) {
		t.Errorf("F1 = %v", c.F1())
	}
}

func TestConfusionZero(t *testing.T) {
	var c Confusion
	if c.TPR() != 0 || c.FPR() != 0 || c.Precision() != 0 || c.Accuracy() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion matrix must report zeros, not NaN")
	}
}
