package stats

import (
	"math"
	"sort"
)

// The hypothesis tests in this file are the i.i.d. diagnostics required
// before extreme-value fitting in MBPTA: execution-time samples must look
// independent (runs test, Ljung–Box) and identically distributed across the
// campaign (two-sample Kolmogorov–Smirnov on the two halves).

// RunsTest performs the Wald–Wolfowitz runs test for randomness on xs,
// dichotomized around the median. It returns the two-sided p-value under the
// normal approximation. Samples equal to the median are discarded, the
// standard treatment. It returns ErrDegenerate if either side is empty.
func RunsTest(xs []float64) (pValue float64, err error) {
	if len(xs) < 2 {
		return 0, ErrDegenerate
	}
	med := Quantile(xs, 0.5)
	var signs []bool
	for _, x := range xs {
		if x == med {
			continue
		}
		signs = append(signs, x > med)
	}
	if len(signs) < 2 {
		return 0, ErrDegenerate
	}
	n1, n2 := 0, 0
	runs := 1
	for i, s := range signs {
		if s {
			n1++
		} else {
			n2++
		}
		if i > 0 && s != signs[i-1] {
			runs++
		}
	}
	if n1 == 0 || n2 == 0 {
		return 0, ErrDegenerate
	}
	fn1, fn2 := float64(n1), float64(n2)
	mean := 2*fn1*fn2/(fn1+fn2) + 1
	variance := 2 * fn1 * fn2 * (2*fn1*fn2 - fn1 - fn2) /
		((fn1 + fn2) * (fn1 + fn2) * (fn1 + fn2 - 1))
	if variance <= 0 {
		return 0, ErrDegenerate
	}
	z := (float64(runs) - mean) / math.Sqrt(variance)
	return 2 * normalSurvival(math.Abs(z)), nil
}

// LjungBox performs the Ljung–Box test for autocorrelation up to the given
// lag. It returns the p-value from the chi-squared distribution with lag
// degrees of freedom; small p-values indicate serial dependence.
func LjungBox(xs []float64, lag int) (pValue float64, err error) {
	n := len(xs)
	if n <= lag+1 || lag < 1 {
		return 0, ErrDegenerate
	}
	m := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	if denom == 0 {
		return 0, ErrDegenerate
	}
	q := 0.0
	for k := 1; k <= lag; k++ {
		num := 0.0
		for t := k; t < n; t++ {
			num += (xs[t] - m) * (xs[t-k] - m)
		}
		rk := num / denom
		q += rk * rk / float64(n-k)
	}
	q *= float64(n) * (float64(n) + 2)
	return chiSquaredSurvival(q, lag), nil
}

// KolmogorovSmirnov performs the two-sample KS test and returns the
// asymptotic p-value. MBPTA uses it to compare the first and second halves
// of a measurement campaign as an identical-distribution check.
func KolmogorovSmirnov(a, b []float64) (pValue float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrDegenerate
	}
	as := make([]float64, len(a))
	bs := make([]float64, len(b))
	copy(as, a)
	copy(bs, b)
	sort.Float64s(as)
	sort.Float64s(bs)
	d := 0.0
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	en := math.Sqrt(float64(len(as)) * float64(len(bs)) / float64(len(as)+len(bs)))
	return ksSurvival((en + 0.12 + 0.11/en) * d), nil
}

// ksSurvival evaluates the Kolmogorov distribution survival function
// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// normalSurvival returns P(Z > z) for a standard normal Z.
func normalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// chiSquaredSurvival returns P(X > x) for X chi-squared with k degrees of
// freedom, via the regularized upper incomplete gamma function.
func chiSquaredSurvival(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return upperIncompleteGammaRegularized(float64(k)/2, x/2)
}

// upperIncompleteGammaRegularized computes Q(a, x) = Γ(a, x)/Γ(a) using the
// series expansion for x < a+1 and a continued fraction otherwise
// (Numerical Recipes, gammp/gammq).
func upperIncompleteGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerSeries(a, x)
	}
	return upperContinuedFraction(a, x)
}

func lowerSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func upperContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
