package stats

import (
	"math"
	"testing"

	"safexplain/internal/prng"
)

func TestRunsTestRandomSample(t *testing.T) {
	r := prng.New(7)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()
	}
	p, err := RunsTest(xs)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Fatalf("i.i.d. sample rejected by runs test: p = %v", p)
	}
}

func TestRunsTestDetectsTrend(t *testing.T) {
	// A monotone ramp has exactly 2 runs around the median — maximally
	// non-random.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
	}
	p, err := RunsTest(xs)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("trend not detected: p = %v", p)
	}
}

func TestRunsTestDetectsAlternation(t *testing.T) {
	// Perfect alternation has the maximum number of runs; also non-random.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	p, err := RunsTest(xs)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("alternation not detected: p = %v", p)
	}
}

func TestRunsTestDegenerate(t *testing.T) {
	if _, err := RunsTest([]float64{1}); err == nil {
		t.Fatal("expected error for single sample")
	}
	if _, err := RunsTest([]float64{3, 3, 3, 3}); err == nil {
		t.Fatal("expected error for constant sample")
	}
}

func TestLjungBoxIIDSample(t *testing.T) {
	r := prng.New(11)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	p, err := LjungBox(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Fatalf("i.i.d. sample rejected by Ljung-Box: p = %v", p)
	}
}

func TestLjungBoxDetectsAutocorrelation(t *testing.T) {
	// AR(1) process with strong positive correlation.
	r := prng.New(13)
	xs := make([]float64, 500)
	prev := 0.0
	for i := range xs {
		prev = 0.9*prev + r.NormFloat64()
		xs[i] = prev
	}
	p, err := LjungBox(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("autocorrelation not detected: p = %v", p)
	}
}

func TestLjungBoxDegenerate(t *testing.T) {
	if _, err := LjungBox([]float64{1, 2}, 10); err == nil {
		t.Fatal("expected error when n <= lag+1")
	}
	if _, err := LjungBox(make([]float64, 100), 10); err == nil {
		t.Fatal("expected error for constant sample")
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	r := prng.New(17)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	p, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Fatalf("same-distribution samples rejected: p = %v", p)
	}
}

func TestKolmogorovSmirnovDifferentDistributions(t *testing.T) {
	r := prng.New(19)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1.0 // shifted
	}
	p, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("shift not detected: p = %v", p)
	}
}

func TestKolmogorovSmirnovDegenerate(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Fatal("expected error for empty sample")
	}
}

func TestNormalSurvivalKnownValues(t *testing.T) {
	// P(Z > 0) = 0.5; P(Z > 1.96) ≈ 0.025.
	if got := normalSurvival(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("normalSurvival(0) = %v", got)
	}
	if got := normalSurvival(1.96); !almostEqual(got, 0.025, 1e-3) {
		t.Errorf("normalSurvival(1.96) = %v", got)
	}
}

func TestChiSquaredSurvivalKnownValues(t *testing.T) {
	// For k=1: P(X > 3.841) ≈ 0.05. For k=10: P(X > 18.307) ≈ 0.05.
	if got := chiSquaredSurvival(3.841, 1); !almostEqual(got, 0.05, 2e-3) {
		t.Errorf("chi2(3.841, 1) = %v", got)
	}
	if got := chiSquaredSurvival(18.307, 10); !almostEqual(got, 0.05, 2e-3) {
		t.Errorf("chi2(18.307, 10) = %v", got)
	}
	if got := chiSquaredSurvival(0, 5); got != 1 {
		t.Errorf("chi2(0, 5) = %v, want 1", got)
	}
}

func TestKSSurvivalBounds(t *testing.T) {
	if ksSurvival(0) != 1 {
		t.Fatal("ksSurvival(0) should be 1")
	}
	if p := ksSurvival(10); p < 0 || p > 1e-6 {
		t.Fatalf("ksSurvival(10) = %v, want ~0", p)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		p := ksSurvival(l)
		if p > prev+1e-12 {
			t.Fatalf("ksSurvival not monotone at lambda=%v", l)
		}
		prev = p
	}
}

func TestUpperIncompleteGamma(t *testing.T) {
	// Q(1, x) = exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		got := upperIncompleteGammaRegularized(1, x)
		want := math.Exp(-x)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("Q(1,%v) = %v, want %v", x, got, want)
		}
	}
}
