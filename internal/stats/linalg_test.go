package stats

import (
	"math"
	"testing"
	"testing/quick"

	"safexplain/internal/prng"
)

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.At(0, 0), 2, 1e-12) || !almostEqual(l.At(1, 0), 1, 1e-12) ||
		!almostEqual(l.At(1, 1), math.Sqrt2, 1e-12) || l.At(0, 1) != 0 {
		t.Fatalf("wrong factor: %+v", l.Data)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3 and -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	// Property: for random SPD A = B Bᵀ + I, L Lᵀ must reconstruct A.
	check := func(seed uint64) bool {
		r := prng.New(seed)
		const n = 5
		b := NewMatrix(n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += b.At(i, k) * b.At(j, k)
				}
				if i == j {
					s += 1
				}
				a.Set(i, j, s)
			}
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEqual(s, a.At(i, j), 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveCholesky(t *testing.T) {
	// Solve A x = b with A = [[4,2],[2,3]], b = [8, 7] -> x = [1.25, 1.5].
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := SolveCholesky(l, []float64{8, 7})
	if !almostEqual(x[0], 1.25, 1e-12) || !almostEqual(x[1], 1.5, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestCovarianceIdentityData(t *testing.T) {
	// Two perfectly anti-correlated features.
	samples := [][]float64{{1, -1}, {2, -2}, {3, -3}, {4, -4}}
	cov, mean, err := Covariance(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean[0], 2.5, 1e-12) || !almostEqual(mean[1], -2.5, 1e-12) {
		t.Fatalf("mean = %v", mean)
	}
	// Var = 5/3; Cov(0,1) = -5/3.
	if !almostEqual(cov.At(0, 0), 5.0/3.0, 1e-12) || !almostEqual(cov.At(0, 1), -5.0/3.0, 1e-12) {
		t.Fatalf("cov = %+v", cov.Data)
	}
	if !almostEqual(cov.At(0, 1), cov.At(1, 0), 1e-15) {
		t.Fatal("covariance not symmetric")
	}
}

func TestCovarianceRidge(t *testing.T) {
	samples := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	cov, _, err := Covariance(samples, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Constant data: covariance is pure ridge on the diagonal.
	if !almostEqual(cov.At(0, 0), 0.5, 1e-12) || cov.At(0, 1) != 0 {
		t.Fatalf("cov = %+v", cov.Data)
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, _, err := Covariance([][]float64{{1}}, 0); err == nil {
		t.Fatal("expected error for single sample")
	}
	if _, _, err := Covariance([][]float64{{1, 2}, {1}}, 0); err == nil {
		t.Fatal("expected error for ragged input")
	}
}

func TestMahalanobisIdentityCovariance(t *testing.T) {
	// With identity covariance the Mahalanobis distance is Euclidean.
	a := NewMatrix(3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	mean := []float64{0, 0, 0}
	d := MahalanobisSq(l, mean, []float64{3, 4, 0})
	if !almostEqual(d, 25, 1e-12) {
		t.Fatalf("distance² = %v, want 25", d)
	}
}

func TestMahalanobisScalesWithVariance(t *testing.T) {
	// Variance 4 in dim 0 halves the standardized distance.
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 1)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	d := MahalanobisSq(l, []float64{0, 0}, []float64{2, 0})
	if !almostEqual(d, 1, 1e-12) {
		t.Fatalf("distance² = %v, want 1", d)
	}
}

func TestLinearRegressionRecoversPlane(t *testing.T) {
	// y = 2 x0 - 3 x1 + 0.5, noiseless.
	r := prng.New(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		x = append(x, []float64{a, b})
		y = append(y, 2*a-3*b+0.5)
	}
	w, b, err := LinearRegression(x, y, nil, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w[0], 2, 1e-6) || !almostEqual(w[1], -3, 1e-6) || !almostEqual(b, 0.5, 1e-6) {
		t.Fatalf("w = %v, b = %v", w, b)
	}
}

func TestLinearRegressionWeighted(t *testing.T) {
	// Two inconsistent points; all weight on the first decides the fit.
	x := [][]float64{{1}, {1}}
	y := []float64{1, 100}
	w, b, err := LinearRegression(x, y, []float64{1, 1e-9}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	pred := w[0] + b
	if math.Abs(pred-1) > 0.01 {
		t.Fatalf("weighted fit predicts %v, want ~1", pred)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, _, err := LinearRegression(nil, nil, nil, 0); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, _, err := LinearRegression([][]float64{{1, 2}, {1}}, []float64{1, 2}, nil, 0); err == nil {
		t.Fatal("expected error for ragged input")
	}
}
