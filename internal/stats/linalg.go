package stats

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("stats: matrix not positive definite")

// Matrix is a dense row-major square matrix, just large enough for the
// feature-space covariance work the supervisors need.
type Matrix struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewMatrix returns a zero n×n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Covariance estimates the sample covariance matrix of the rows of samples
// (each row is one observation of dim features), with ridge added to the
// diagonal for numerical stability — the usual shrinkage when the number of
// samples is close to the dimensionality.
func Covariance(samples [][]float64, ridge float64) (*Matrix, []float64, error) {
	if len(samples) < 2 {
		return nil, nil, ErrDegenerate
	}
	dim := len(samples[0])
	mean := make([]float64, dim)
	for _, row := range samples {
		if len(row) != dim {
			return nil, nil, errors.New("stats: ragged sample matrix")
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(samples))
	}
	cov := NewMatrix(dim)
	for _, row := range samples {
		for i := 0; i < dim; i++ {
			di := row[i] - mean[i]
			for j := i; j < dim; j++ {
				cov.Data[i*dim+j] += di * (row[j] - mean[j])
			}
		}
	}
	inv := 1 / float64(len(samples)-1)
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			v := cov.Data[i*dim+j] * inv
			cov.Data[i*dim+j] = v
			cov.Data[j*dim+i] = v
		}
		cov.Data[i*dim+i] += ridge
	}
	return cov, mean, nil
}

// Cholesky computes the lower-triangular factor L with A = L Lᵀ. The input
// must be symmetric positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.N
	l := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A, by forward
// then backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.N
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// MahalanobisSq returns the squared Mahalanobis distance (x-mean)ᵀ A⁻¹
// (x-mean) given the Cholesky factor L of the covariance A. Solving L z =
// (x-mean) gives distance² = zᵀz without forming the inverse.
func MahalanobisSq(l *Matrix, mean, x []float64) float64 {
	n := l.N
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := x[i] - mean[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * z[k]
		}
		z[i] = sum / l.At(i, i)
	}
	d := 0.0
	for _, v := range z {
		d += v * v
	}
	return d
}

// LinearRegression fits y ≈ Xw + b by ordinary least squares using the
// normal equations with a small ridge term, returning the weights and
// intercept. It is the solver behind the LIME-style local surrogate
// explainer. sampleWeights, if non-nil, weights each row.
func LinearRegression(x [][]float64, y, sampleWeights []float64, ridge float64) (w []float64, b float64, err error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, 0, ErrDegenerate
	}
	dim := len(x[0])
	// Augment with intercept column: solve for [w; b] over dim+1 terms.
	d := dim + 1
	ata := NewMatrix(d)
	atb := make([]float64, d)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		if len(x[i]) != dim {
			return nil, 0, errors.New("stats: ragged design matrix")
		}
		copy(row, x[i])
		row[dim] = 1
		sw := 1.0
		if sampleWeights != nil {
			sw = sampleWeights[i]
		}
		for a := 0; a < d; a++ {
			atb[a] += sw * row[a] * y[i]
			for c := a; c < d; c++ {
				ata.Data[a*d+c] += sw * row[a] * row[c]
			}
		}
	}
	for a := 0; a < d; a++ {
		for c := 0; c < a; c++ {
			ata.Data[a*d+c] = ata.Data[c*d+a]
		}
		ata.Data[a*d+a] += ridge
	}
	l, err := Cholesky(ata)
	if err != nil {
		return nil, 0, err
	}
	sol := SolveCholesky(l, atb)
	return sol[:dim], sol[dim], nil
}
