// Package stats provides the statistics substrate shared by the supervisor,
// MBPTA, and evaluation code: descriptive statistics, rank-based detection
// metrics (AUROC, FPR at fixed TPR), classification tallies, hypothesis
// tests used as i.i.d. diagnostics, and the small dense linear algebra
// needed for Mahalanobis-distance supervisors.
//
// Everything is deterministic: no randomized algorithms, fixed iteration
// order, serial summation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrDegenerate is returned when an input sample is too small or constant
// for the requested statistic to be defined.
var ErrDegenerate = errors.New("stats: degenerate input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (stddev/mean). It returns 0 when
// the mean is 0.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-th sample quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics (type-7 estimator, the R default).
// The input need not be sorted. It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	i := int(math.Floor(h))
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Quantiles returns the sample quantiles of xs at each probability in qs,
// sorting xs only once.
func Quantiles(xs []float64, qs []float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, math.Max(0, math.Min(1, q)))
	}
	return out
}

// AUROC computes the area under the ROC curve for a detector that assigns
// higher scores to the positive class. It is the Mann–Whitney U statistic
// normalized to [0, 1]; ties contribute 1/2. It returns ErrDegenerate when
// either class is empty.
func AUROC(negScores, posScores []float64) (float64, error) {
	if len(negScores) == 0 || len(posScores) == 0 {
		return 0, ErrDegenerate
	}
	// Sort the union once and use midranks so ties are handled exactly.
	type obs struct {
		v   float64
		pos bool
	}
	all := make([]obs, 0, len(negScores)+len(posScores))
	for _, v := range negScores {
		all = append(all, obs{v, false})
	}
	for _, v := range posScores {
		all = append(all, obs{v, true})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	var rankSumPos float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		// Midrank of the tie group (1-based ranks).
		midrank := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSumPos += midrank
			}
		}
		i = j
	}
	nPos := float64(len(posScores))
	nNeg := float64(len(negScores))
	u := rankSumPos - nPos*(nPos+1)/2
	return u / (nPos * nNeg), nil
}

// FPRAtTPR returns the false-positive rate achieved at the smallest score
// threshold whose true-positive rate is at least tpr. Scores are
// higher-is-positive. The conventional supervisor metric is FPR@95%TPR.
func FPRAtTPR(negScores, posScores []float64, tpr float64) (float64, error) {
	if len(negScores) == 0 || len(posScores) == 0 {
		return 0, ErrDegenerate
	}
	pos := make([]float64, len(posScores))
	copy(pos, posScores)
	sort.Float64s(pos)
	// Threshold t such that P(pos >= t) >= tpr: take the (1-tpr) quantile
	// from below.
	idx := int(math.Floor((1 - tpr) * float64(len(pos))))
	if idx >= len(pos) {
		idx = len(pos) - 1
	}
	if idx < 0 {
		idx = 0
	}
	t := pos[idx]
	fp := 0
	for _, v := range negScores {
		if v >= t {
			fp++
		}
	}
	return float64(fp) / float64(len(negScores)), nil
}

// Confusion is a binary confusion-matrix tally.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, actual) outcome.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// TPR returns the true-positive rate (recall); 0 when undefined.
func (c *Confusion) TPR() float64 {
	d := c.TP + c.FN
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// FPR returns the false-positive rate; 0 when undefined.
func (c *Confusion) FPR() float64 {
	d := c.FP + c.TN
	if d == 0 {
		return 0
	}
	return float64(c.FP) / float64(d)
}

// Precision returns TP/(TP+FP); 0 when undefined.
func (c *Confusion) Precision() float64 {
	d := c.TP + c.FP
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// Accuracy returns the fraction of correct outcomes; 0 when empty.
func (c *Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// F1 returns the harmonic mean of precision and recall; 0 when undefined.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.TPR()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
