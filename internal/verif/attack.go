package verif

import (
	"safexplain/internal/nn"
	"safexplain/internal/tensor"
)

// Adversarial falsification. Where IBP proves robustness, these attacks
// disprove it: they search the eps-ball for an input the model
// misclassifies. In the T10 experiment they upper-bound the true robust
// radius from above while IBP lower-bounds it from below. They are also a
// fault-injection source: adversarial inputs are the worst-case sensor
// manipulation a supervisor should flag.

// lossGrad returns the gradient of the cross-entropy loss w.r.t. x.
func lossGrad(net *nn.Network, x *tensor.Tensor, label int) *tensor.Tensor {
	logits := net.Forward(x)
	_, g := nn.SoftmaxCrossEntropy(logits, label)
	gradIn := net.Backward(g)
	net.ZeroGrad()
	return gradIn
}

// clampBall projects adv into the eps-ball around x intersected with
// [0,1].
func clampBall(adv, x *tensor.Tensor, eps float32) {
	for i := range adv.Data() {
		v := adv.Data()[i]
		lo := x.Data()[i] - eps
		hi := x.Data()[i] + eps
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		adv.Data()[i] = v
	}
}

// FGSM runs the fast gradient sign method: one signed-gradient step of
// size eps. It returns the adversarial input and whether it flipped the
// prediction away from label.
func FGSM(net *nn.Network, x *tensor.Tensor, label int, eps float32) (adv *tensor.Tensor, success bool) {
	g := lossGrad(net, x, label)
	adv = x.Clone()
	for i := range adv.Data() {
		switch {
		case g.Data()[i] > 0:
			adv.Data()[i] += eps
		case g.Data()[i] < 0:
			adv.Data()[i] -= eps
		}
	}
	clampBall(adv, x, eps)
	class, _ := net.Predict(adv)
	return adv, class != label
}

// PGD runs projected gradient descent: `steps` signed-gradient steps of
// size alpha, projected into the eps-ball after each. The standard
// stronger attack; alpha defaults to eps/4 when 0.
func PGD(net *nn.Network, x *tensor.Tensor, label int, eps, alpha float32, steps int) (adv *tensor.Tensor, success bool) {
	if steps <= 0 {
		steps = 10
	}
	if alpha <= 0 {
		alpha = eps / 4
	}
	adv = x.Clone()
	for s := 0; s < steps; s++ {
		g := lossGrad(net, adv, label)
		for i := range adv.Data() {
			switch {
			case g.Data()[i] > 0:
				adv.Data()[i] += alpha
			case g.Data()[i] < 0:
				adv.Data()[i] -= alpha
			}
		}
		clampBall(adv, x, eps)
		if class, _ := net.Predict(adv); class != label {
			return adv, true
		}
	}
	class, _ := net.Predict(adv)
	return adv, class != label
}

// EmpiricalRadius finds the smallest eps on a grid at which PGD flips the
// prediction — an upper bound on the true robust radius. Returns maxEps
// when no attack on the grid succeeds.
func EmpiricalRadius(net *nn.Network, x *tensor.Tensor, label int, maxEps float32, gridSteps, pgdSteps int) float32 {
	if gridSteps <= 0 {
		gridSteps = 16
	}
	for k := 1; k <= gridSteps; k++ {
		eps := maxEps * float32(k) / float32(gridSteps)
		if _, ok := PGD(net, x, label, eps, 0, pgdSteps); ok {
			return eps
		}
	}
	return maxEps
}
