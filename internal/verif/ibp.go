// Package verif provides formal robustness verification for the DL
// library: interval bound propagation (IBP) computes guaranteed output
// bounds for every input in an L∞ ball, so a prediction can be *certified*
// robust — no perturbation within the ball changes the class. This is the
// constructive half of the abstract's "strategies to reach (and prove)
// correct operation": pass/fail evidence a FUSA process can consume, as
// opposed to statistical testing alone.
//
// The package also implements the falsification side — FGSM and PGD
// adversarial attacks (attack.go) — so every robustness claim is bracketed
// from both directions: IBP certifies a radius, attacks exhibit concrete
// counterexamples beyond it. The gap between the certified radius and the
// smallest found counterexample measures the method's tightness
// (experiment T10).
//
// Supported layers: Dense, Conv2D, ReLU, MaxPool2D, AvgPool2D, Flatten —
// the deployment set of the quantized engine. Sigmoid/Tanh are rejected:
// unsupported constructs must fail loudly.
package verif

import (
	"errors"
	"fmt"

	"safexplain/internal/nn"
	"safexplain/internal/tensor"
)

// ErrUnsupportedLayer is returned when the network contains a layer IBP
// has no bound-propagation rule for.
var ErrUnsupportedLayer = errors.New("verif: unsupported layer type")

// Interval is an elementwise box: Lo[i] <= x[i] <= Hi[i].
type Interval struct {
	Lo, Hi *tensor.Tensor
}

// NewInterval returns the box [x-eps, x+eps] clamped to [min, max] (use
// 0, 1 for image inputs).
func NewInterval(x *tensor.Tensor, eps float32, min, max float32) Interval {
	lo := tensor.New(x.Shape()...)
	hi := tensor.New(x.Shape()...)
	for i, v := range x.Data() {
		l := v - eps
		h := v + eps
		if l < min {
			l = min
		}
		if h > max {
			h = max
		}
		lo.Data()[i] = l
		hi.Data()[i] = h
	}
	return Interval{Lo: lo, Hi: hi}
}

// Width returns the maximum elementwise width of the box.
func (iv Interval) Width() float32 {
	var w float32
	for i := range iv.Lo.Data() {
		if d := iv.Hi.Data()[i] - iv.Lo.Data()[i]; d > w {
			w = d
		}
	}
	return w
}

// Propagate pushes the interval through the network and returns the output
// logit bounds. The network's caches are not touched (IBP never calls
// Forward), so it is safe to interleave with training or explanation.
func Propagate(net *nn.Network, in Interval) (Interval, error) {
	cur := in
	for _, l := range net.Layers {
		var err error
		cur, err = propagateLayer(l, cur)
		if err != nil {
			return Interval{}, err
		}
	}
	return cur, nil
}

func propagateLayer(l nn.Layer, in Interval) (Interval, error) {
	switch v := l.(type) {
	case *nn.Dense:
		return denseBounds(v, in), nil
	case *nn.Conv2D:
		return convBounds(v, in), nil
	case *nn.ReLU:
		lo := tensor.New(in.Lo.Shape()...)
		hi := tensor.New(in.Hi.Shape()...)
		tensor.ReLU(lo, in.Lo)
		tensor.ReLU(hi, in.Hi)
		return Interval{Lo: lo, Hi: hi}, nil
	case *nn.MaxPool2D:
		lo := tensor.New(v.OutShape(in.Lo.Shape())...)
		hi := tensor.New(v.OutShape(in.Hi.Shape())...)
		// Max is monotone: bound-of-max = max-of-bounds.
		tensor.MaxPool2D(lo, in.Lo, v.Window, v.Stride, nil)
		tensor.MaxPool2D(hi, in.Hi, v.Window, v.Stride, nil)
		return Interval{Lo: lo, Hi: hi}, nil
	case *nn.AvgPool2D:
		lo := tensor.New(v.OutShape(in.Lo.Shape())...)
		hi := tensor.New(v.OutShape(in.Hi.Shape())...)
		tensor.AvgPool2D(lo, in.Lo, v.Window, v.Stride)
		tensor.AvgPool2D(hi, in.Hi, v.Window, v.Stride)
		return Interval{Lo: lo, Hi: hi}, nil
	case *nn.Flatten:
		return Interval{Lo: in.Lo.Reshape(in.Lo.Len()), Hi: in.Hi.Reshape(in.Hi.Len())}, nil
	default:
		return Interval{}, fmt.Errorf("%w: %s", ErrUnsupportedLayer, l.Name())
	}
}

// denseBounds propagates a box through y = Wx + b using the sign
// decomposition: positive weights take the matching bound, negative
// weights the opposite one.
func denseBounds(d *nn.Dense, in Interval) Interval {
	lo := tensor.New(d.Out)
	hi := tensor.New(d.Out)
	w := d.W.Value.Data()
	for o := 0; o < d.Out; o++ {
		l := d.B.Value.Data()[o]
		h := l
		row := w[o*d.In : (o+1)*d.In]
		for i, wv := range row {
			if wv >= 0 {
				l += wv * in.Lo.Data()[i]
				h += wv * in.Hi.Data()[i]
			} else {
				l += wv * in.Hi.Data()[i]
				h += wv * in.Lo.Data()[i]
			}
		}
		lo.Data()[o] = l
		hi.Data()[o] = h
	}
	return Interval{Lo: lo, Hi: hi}
}

// convBounds propagates a box through a convolution with the same sign
// decomposition, iterating exactly like the reference kernel.
func convBounds(c *nn.Conv2D, in Interval) Interval {
	inH, inW := in.Lo.Dim(1), in.Lo.Dim(2)
	outShape := c.OutShape(in.Lo.Shape())
	lo := tensor.New(outShape...)
	hi := tensor.New(outShape...)
	oh, ow := outShape[1], outShape[2]
	wd := c.W.Value.Data()
	for o := 0; o < c.OutC; o++ {
		bias := c.B.Value.Data()[o]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				l, h := bias, bias
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.KH; ky++ {
						iy := oy*c.Stride + ky - c.Pad
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < c.KW; kx++ {
							ix := ox*c.Stride + kx - c.Pad
							if ix < 0 || ix >= inW {
								continue
							}
							wv := wd[((o*c.InC+ic)*c.KH+ky)*c.KW+kx]
							if wv >= 0 {
								l += wv * in.Lo.At3(ic, iy, ix)
								h += wv * in.Hi.At3(ic, iy, ix)
							} else {
								l += wv * in.Hi.At3(ic, iy, ix)
								h += wv * in.Lo.At3(ic, iy, ix)
							}
						}
					}
				}
				lo.Set3(o, oy, ox, l)
				hi.Set3(o, oy, ox, h)
			}
		}
	}
	return Interval{Lo: lo, Hi: hi}
}

// Certified reports whether the network provably predicts class for every
// input in the eps-ball around x (inputs clamped to [0,1]): the class
// logit's lower bound must exceed every other logit's upper bound.
func Certified(net *nn.Network, x *tensor.Tensor, class int, eps float32) (bool, error) {
	out, err := Propagate(net, NewInterval(x, eps, 0, 1))
	if err != nil {
		return false, err
	}
	lo := out.Lo.Data()[class]
	for i, h := range out.Hi.Data() {
		if i == class {
			continue
		}
		if h >= lo {
			return false, nil
		}
	}
	return true, nil
}

// CertifiedRadius binary-searches the largest eps (within [0, maxEps], to
// tol precision) at which the prediction on x is certified. Returns 0 if
// not certifiable even at tol.
func CertifiedRadius(net *nn.Network, x *tensor.Tensor, class int, maxEps, tol float32) (float32, error) {
	ok, err := Certified(net, x, class, tol)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	lo, hi := tol, maxEps
	if ok, _ := Certified(net, x, class, maxEps); ok {
		return maxEps, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if ok, _ := Certified(net, x, class, mid); ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
