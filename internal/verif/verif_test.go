package verif

import (
	"errors"
	"sync"
	"testing"

	"safexplain/internal/data"
	"safexplain/internal/nn"
	"safexplain/internal/prng"
	"safexplain/internal/tensor"
)

var (
	vOnce  sync.Once
	vNet   *nn.Network
	vTrain *data.Set
	vTest  *data.Set
)

func vFixture(t testing.TB) (*nn.Network, *data.Set, *data.Set) {
	t.Helper()
	vOnce.Do(func() {
		set := data.Railway(data.Config{N: 240, Seed: 600, Noise: 0.05})
		vTrain, vTest = set.Split(0.8, 601)
		src := prng.New(602)
		vNet = nn.NewNetwork("verif-cnn",
			nn.NewConv2D(1, 4, 3, 1, 1, src), nn.NewReLU(), nn.NewMaxPool2D(2, 2),
			nn.NewFlatten(), nn.NewDense(4*8*8, 16, src), nn.NewReLU(),
			nn.NewDense(16, set.NumClasses(), src))
		if _, _, err := nn.TrainClassifier(vNet, vTrain, nn.TrainConfig{
			Epochs: 8, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 603,
		}); err != nil {
			panic(err)
		}
	})
	return vNet, vTrain, vTest
}

func TestNewIntervalClamps(t *testing.T) {
	x := tensor.FromSlice([]float32{0.02, 0.5, 0.98}, 3)
	iv := NewInterval(x, 0.1, 0, 1)
	if iv.Lo.Data()[0] != 0 || iv.Hi.Data()[2] != 1 {
		t.Fatalf("clamping failed: lo=%v hi=%v", iv.Lo.Data(), iv.Hi.Data())
	}
	if iv.Lo.Data()[1] != 0.4 || iv.Hi.Data()[1] != 0.6 {
		t.Fatalf("interior bounds wrong: %v %v", iv.Lo.Data()[1], iv.Hi.Data()[1])
	}
	if w := iv.Width(); w < 0.199 || w > 0.201 {
		t.Fatalf("width = %v", w)
	}
}

func TestPropagateZeroWidthMatchesForward(t *testing.T) {
	// An eps=0 box must propagate to exactly the forward-pass logits.
	net, _, test := vFixture(t)
	for i := 0; i < 5; i++ {
		x, _ := test.Sample(i)
		out, err := Propagate(net, NewInterval(x, 0, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		logits := net.Forward(x)
		for j := range logits.Data() {
			l, h := out.Lo.Data()[j], out.Hi.Data()[j]
			v := logits.Data()[j]
			if l > v+1e-4 || h < v-1e-4 {
				t.Fatalf("logit %d = %v outside zero-width bounds [%v, %v]", j, v, l, h)
			}
		}
	}
}

func TestBoundsSoundnessAgainstRandomPerturbations(t *testing.T) {
	// Soundness: for any perturbation inside the ball, the true logits
	// must lie inside the propagated bounds.
	net, _, test := vFixture(t)
	x, _ := test.Sample(0)
	const eps = 0.05
	out, err := Propagate(net, NewInterval(x, eps, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(604)
	for trial := 0; trial < 50; trial++ {
		pert := x.Clone()
		for i := range pert.Data() {
			v := pert.Data()[i] + (r.Float32()*2-1)*eps
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			pert.Data()[i] = v
		}
		logits := net.Forward(pert)
		for j, v := range logits.Data() {
			if v < out.Lo.Data()[j]-1e-4 || v > out.Hi.Data()[j]+1e-4 {
				t.Fatalf("trial %d: logit %d = %v escapes bounds [%v, %v]",
					trial, j, v, out.Lo.Data()[j], out.Hi.Data()[j])
			}
		}
	}
}

func TestBoundsMonotoneInEps(t *testing.T) {
	net, _, test := vFixture(t)
	x, _ := test.Sample(1)
	prevWidth := float32(-1)
	for _, eps := range []float32{0.01, 0.02, 0.05, 0.1} {
		out, err := Propagate(net, NewInterval(x, eps, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		w := out.Width()
		if w <= prevWidth {
			t.Fatalf("bound width not growing with eps: %v at %v", w, eps)
		}
		prevWidth = w
	}
}

func TestCertifiedAtTinyEps(t *testing.T) {
	// Correctly classified samples must certify at a tiny radius.
	net, _, test := vFixture(t)
	certified := 0
	checked := 0
	for i := 0; i < 20 && i < test.Len(); i++ {
		x, label := test.Sample(i)
		class, _ := net.Predict(x)
		if class != label {
			continue
		}
		checked++
		ok, err := Certified(net, x, class, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			certified++
		}
	}
	if checked == 0 {
		t.Skip("no correct predictions")
	}
	if certified == 0 {
		t.Fatal("nothing certifies even at eps=1e-4")
	}
}

func TestCertifiedRadiusConsistent(t *testing.T) {
	net, _, test := vFixture(t)
	x, _ := test.Sample(2)
	class, _ := net.Predict(x)
	r, err := CertifiedRadius(net, x, class, 0.2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if r > 0 {
		ok, _ := Certified(net, x, class, r)
		if !ok {
			t.Fatalf("radius %v reported but not certified", r)
		}
	}
}

func TestUnsupportedLayerRejected(t *testing.T) {
	net := nn.NewNetwork("bad", nn.NewDense(4, 4, prng.New(1)), nn.NewTanh())
	x := tensor.New(4)
	if _, err := Propagate(net, NewInterval(x, 0.1, 0, 1)); !errors.Is(err, ErrUnsupportedLayer) {
		t.Fatalf("expected ErrUnsupportedLayer, got %v", err)
	}
}

func TestFGSMFindsAdversarialAtLargeEps(t *testing.T) {
	net, _, test := vFixture(t)
	flipped := 0
	for i := 0; i < 10; i++ {
		x, label := test.Sample(i)
		if class, _ := net.Predict(x); class != label {
			continue
		}
		if _, ok := FGSM(net, x, label, 0.5); ok {
			flipped++
		}
	}
	if flipped == 0 {
		t.Fatal("FGSM at eps=0.5 flipped nothing — attack is broken")
	}
}

func TestFGSMStaysInBall(t *testing.T) {
	net, _, test := vFixture(t)
	x, label := test.Sample(0)
	const eps = 0.1
	adv, _ := FGSM(net, x, label, eps)
	for i := range adv.Data() {
		d := adv.Data()[i] - x.Data()[i]
		if d > eps+1e-6 || d < -eps-1e-6 {
			t.Fatalf("FGSM escaped the ball at %d: delta %v", i, d)
		}
		if adv.Data()[i] < 0 || adv.Data()[i] > 1 {
			t.Fatal("FGSM escaped the input domain")
		}
	}
}

func TestPGDAtLeastAsStrongAsFGSM(t *testing.T) {
	net, _, test := vFixture(t)
	const eps = 0.15
	fgsmWins, pgdWins := 0, 0
	for i := 0; i < 15 && i < test.Len(); i++ {
		x, label := test.Sample(i)
		if class, _ := net.Predict(x); class != label {
			continue
		}
		if _, ok := FGSM(net, x, label, eps); ok {
			fgsmWins++
		}
		if _, ok := PGD(net, x, label, eps, 0, 20); ok {
			pgdWins++
		}
	}
	if pgdWins < fgsmWins {
		t.Fatalf("PGD (%d) weaker than FGSM (%d)", pgdWins, fgsmWins)
	}
}

func TestCertifiedImpliesNoAttackSucceeds(t *testing.T) {
	// The core soundness contract: inside a certified radius, PGD must
	// never find a counterexample.
	net, _, test := vFixture(t)
	checked := 0
	for i := 0; i < 20 && checked < 5; i++ {
		x, label := test.Sample(i)
		class, _ := net.Predict(x)
		if class != label {
			continue
		}
		r, err := CertifiedRadius(net, x, class, 0.1, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 0 {
			continue
		}
		checked++
		if _, ok := PGD(net, x, label, r*0.95, 0, 30); ok {
			t.Fatalf("PGD broke a certified radius %v on sample %d", r, i)
		}
	}
	if checked == 0 {
		t.Skip("no certifiable samples")
	}
}

func TestEmpiricalRadiusAboveCertified(t *testing.T) {
	// Certified radius (lower bound) must not exceed the empirical radius
	// (upper bound) — the bracket of experiment T10.
	net, _, test := vFixture(t)
	for i := 0; i < 10; i++ {
		x, label := test.Sample(i)
		class, _ := net.Predict(x)
		if class != label {
			continue
		}
		cert, err := CertifiedRadius(net, x, class, 0.3, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		emp := EmpiricalRadius(net, x, label, 0.3, 16, 10)
		if cert > emp+1e-3 {
			t.Fatalf("sample %d: certified %v above empirical %v — unsound", i, cert, emp)
		}
	}
}
