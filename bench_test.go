// Benchmark harness: one benchmark per table (T1–T21) and figure (F1–F3)
// of EXPERIMENTS.md. Each benchmark regenerates its experiment — printing
// the full table via -v logs — and times a regeneration pass, so
//
//	go test -bench=. -benchmem
//
// both reproduces the evaluation and tracks its cost. Experiment outputs
// are deterministic; fixture training is shared across benchmarks within
// a run.
package safexplain_test

import (
	"testing"

	"safexplain/internal/experiments"
)

// benchExperiment regenerates experiment id once per iteration, logging
// the table and reporting headline metrics from the first pass.
func benchExperiment(b *testing.B, id string, headline ...string) {
	b.Helper()
	res, err := experiments.Run(id)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("%s — %s\n%s", res.ID, res.Title, res.Table)
	for _, h := range headline {
		if v, ok := res.Metrics[h]; ok {
			b.ReportMetric(v, h)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1Supervisors regenerates Table T1: supervisor OOD detection
// (AUROC / FPR@95TPR) across case studies and OOD kinds.
func BenchmarkT1Supervisors(b *testing.B) {
	benchExperiment(b, "T1", "best_mean_auroc")
}

// BenchmarkT2Explainability regenerates Table T2: explanation
// faithfulness (deletion/insertion AUC), localization, and stability.
func BenchmarkT2Explainability(b *testing.B) {
	benchExperiment(b, "T2", "automotive/integrated-gradients/insertion")
}

// BenchmarkT3Patterns regenerates Table T3: the safety-pattern ladder
// under weight and sensor fault injection.
func BenchmarkT3Patterns(b *testing.B) {
	benchExperiment(b, "T3", "seu-80/single/hazard", "seu-80/tmr/hazard")
}

// BenchmarkT4Diversity regenerates Table T4: common-mode failure of
// identical vs diverse redundancy.
func BenchmarkT4Diversity(b *testing.B) {
	benchExperiment(b, "T4", "noise-0.35/identical/identical", "noise-0.35/arch-diverse/identical")
}

// BenchmarkT5FusaLibrary regenerates Table T5: FUSA library properties —
// quantization cost, bit-exactness, allocation freedom.
func BenchmarkT5FusaLibrary(b *testing.B) {
	benchExperiment(b, "T5", "railway/agreement", "railway/allocs_arena")
}

// BenchmarkT6Determinism regenerates Table T6: execution-time jitter per
// platform configuration.
func BenchmarkT6Determinism(b *testing.B) {
	benchExperiment(b, "T6", "lru-contended/jitter", "locked-tdma/jitter")
}

// BenchmarkT7MBPTA regenerates Table T7: MBPTA i.i.d. gate, Gumbel fit,
// pWCET bounds and the block-size ablation.
func BenchmarkT7MBPTA(b *testing.B) {
	benchExperiment(b, "T7", "time-randomized/pwcet1e12")
}

// BenchmarkT8Traceability regenerates Table T8: certification readiness
// after the full lifecycle per case study.
func BenchmarkT8Traceability(b *testing.B) {
	benchExperiment(b, "T8", "railway/readiness")
}

// BenchmarkT9EndToEnd regenerates Table T9: safety-machinery overhead and
// pWCET-budgeted schedulability.
func BenchmarkT9EndToEnd(b *testing.B) {
	benchExperiment(b, "T9", "overhead_simplex", "misses_pwcet", "misses_naive")
}

// BenchmarkT10Robustness regenerates Table T10: certified vs empirical
// robustness and adversarial detectability.
func BenchmarkT10Robustness(b *testing.B) {
	benchExperiment(b, "T10", "mean_certified_radius", "mean_empirical_radius")
}

// BenchmarkF1PWCETCurve regenerates Figure F1: the pWCET curve on the
// time-randomized configuration.
func BenchmarkF1PWCETCurve(b *testing.B) {
	benchExperiment(b, "F1", "pwcet1e15")
}

// BenchmarkF2Frontier regenerates Figure F2: the safety-availability
// frontier per pattern.
func BenchmarkF2Frontier(b *testing.B) {
	benchExperiment(b, "F2", "points")
}

// BenchmarkF3RiskCoverage regenerates Figure F3: risk-coverage curves per
// supervisor.
func BenchmarkF3RiskCoverage(b *testing.B) {
	benchExperiment(b, "F3", "mahalanobis/acc@0.8")
}

// BenchmarkT11Detection regenerates Table T11: the localization task and
// the geometric plausibility check it enables.
func BenchmarkT11Detection(b *testing.B) {
	benchExperiment(b, "T11", "accuracy", "mean_err_px", "veto_rate")
}

// BenchmarkT12FDIR regenerates Table T12: the FDIR fault-injection
// campaign over fault models × safety patterns.
func BenchmarkT12FDIR(b *testing.B) {
	benchExperiment(b, "T12", "mean_detection_latency", "mean_availability",
		"seu-160/single/hazard", "seu-160/single/nofdir/hazard")
}

// BenchmarkT13ProbeEffect regenerates Table T13: observability overhead
// per operated frame and its effect on the pWCET bound.
func BenchmarkT13ProbeEffect(b *testing.B) {
	benchExperiment(b, "T13", "overhead_ratio", "allocs_delta_per_frame", "pwcet_delta_pct")
}

// BenchmarkT14Safelint regenerates Table T14: the safelint seeded-defect
// campaign (per-rule detection and false-positive rates), timing a full
// parse+typecheck+lint pass over the embedded corpora.
func BenchmarkT14Safelint(b *testing.B) {
	benchExperiment(b, "T14", "detection_rate", "hotpath_detection_rate")
}

// BenchmarkT15Blackbox regenerates Table T15: black-box incident
// reconstruction fidelity versus downlink budget, timing the full
// campaign sweep (five budgets x three faults) including telemetry
// capture, decode and reconstruction.
func BenchmarkT15Blackbox(b *testing.B) {
	benchExperiment(b, "T15", "fidelity_full", "fidelity_min")
}

// BenchmarkT16Fleet regenerates Table T16: the fleet ground segment —
// sharded ingest throughput, report determinism under shuffled arrival,
// and common-mode detection latency versus the best single unit.
func BenchmarkT16Fleet(b *testing.B) {
	benchExperiment(b, "T16", "ingest_fps_8u_4s", "fleet_detect_latency_8u", "best_unit_latency_8u")
}

// BenchmarkT17FleetLinks regenerates Table T17: the hierarchical fleet
// uplink under injected link faults — tier-tree convergence vs the flat
// baseline across loss, partition and reorder, timing the full sweep
// including every reconnect/resume cycle.
func BenchmarkT17FleetLinks(b *testing.B) {
	benchExperiment(b, "T17", "fps_2r_clean", "resumes_2r_loss", "fleet_detect_latency")
}

// BenchmarkT18Watch regenerates Table T18: the continuous health watch
// over the fleet tree — detection latency and probe cost for WCET
// burn-rate creep, stage stall and link flap, with the clean run as the
// false-positive floor.
func BenchmarkT18Watch(b *testing.B) {
	benchExperiment(b, "T18", "latency_creep", "probe_us_per_tick_clean", "false_positives_clean")
}

// BenchmarkT19SafelintV2 regenerates Table T19: the interprocedural
// seeded-defect campaign — per-family detection and false-positive
// rates for the hotpath-closure, concurrency-ownership and
// evidence-integrity-taint passes.
func BenchmarkT19SafelintV2(b *testing.B) {
	benchExperiment(b, "T19", "detection_rate", "taint_detection_rate")
}

// BenchmarkT20Tracing regenerates Table T20: end-to-end distributed
// tracing — bundle-set determinism under arrival reversal, link loss
// and reorder, with exact per-tier latency attribution on the shared
// counter clock.
func BenchmarkT20Tracing(b *testing.B) {
	benchExperiment(b, "T20", "fps_clean", "resumes_loss", "attr_err_max_loss")
}

// BenchmarkT21Profiling regenerates Table T21: continuous hot-path
// profiling — seeded slow-kernel localization with live pWCET movement,
// order-independent fleet profile merge, and the probe-effect bound.
func BenchmarkT21Profiling(b *testing.B) {
	benchExperiment(b, "T21", "false_attributions", "probe_ratio", "record_allocs_per_100k")
}
