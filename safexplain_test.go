package safexplain_test

import (
	"testing"

	"safexplain"
)

// Facade tests: the public API must be sufficient for the quickstart
// workflow without touching internal packages directly.

func TestCaseStudiesExposed(t *testing.T) {
	cs := safexplain.CaseStudies()
	if len(cs) != 3 {
		t.Fatalf("case studies: %d", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		names[c.Name] = true
		if c.Generate == nil {
			t.Fatalf("case study %q has no generator", c.Name)
		}
	}
	for _, want := range []string{"automotive", "space", "railway"} {
		if !names[want] {
			t.Fatalf("missing case study %q", want)
		}
	}
	if safexplain.Automotive().Name != "automotive" ||
		safexplain.Space().Name != "space" ||
		safexplain.Railway().Name != "railway" {
		t.Fatal("named accessors wrong")
	}
}

func TestNewImageShape(t *testing.T) {
	x := safexplain.NewImage()
	if x.Rank() != 3 || x.Dim(0) != 1 || x.Dim(1) != 16 || x.Dim(2) != 16 {
		t.Fatalf("NewImage shape %v", x.Shape())
	}
}

func TestStandardSetsExposed(t *testing.T) {
	if len(safexplain.Explainers()) != 6 {
		t.Fatal("expected 6 standard explainers")
	}
	if len(safexplain.Supervisors()) != 6 {
		t.Fatal("expected 6 standard supervisors")
	}
}

func TestBuildThroughFacade(t *testing.T) {
	sys, err := safexplain.Build(safexplain.Config{
		CaseStudy:   safexplain.Space(),
		Pattern:     safexplain.PatternSupervised,
		Seed:        77,
		Epochs:      6,
		MinAccuracy: 0.5, MinAUROC: 0.5, MinStability: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sys.TestSet().Sample(0)
	v := sys.Process(x)
	if !v.Decision.Fallback && (v.Class < 0 || v.Class >= len(sys.Classes)) {
		t.Fatalf("verdict class %d out of range", v.Class)
	}
	if attr := sys.Explain(x); attr.Len() != x.Len() {
		t.Fatal("attribution shape mismatch")
	}
	if r := sys.Readiness(); !r.ChainOK {
		t.Fatal("evidence chain invalid")
	}
}

func TestFacadeOperateAndCertify(t *testing.T) {
	sys, err := safexplain.Build(safexplain.Config{
		CaseStudy:   safexplain.Railway(),
		Pattern:     safexplain.PatternSupervised,
		Seed:        88,
		Epochs:      6,
		MinAccuracy: 0.5, MinAUROC: 0.5, MinStability: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	drift, err := sys.NewDriftDetector(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Operate(sys.TestSet(), drift)
	if rep.Frames == 0 {
		t.Fatal("no frames operated")
	}
	x, _ := sys.TestSet().Sample(0)
	r, err := safexplain.CertifiedRadius(sys, x, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0 || r > 0.1 {
		t.Fatalf("certified radius %v out of range", r)
	}
	// The portfolio supervisor is usable through the facade.
	p := safexplain.StandardPortfolio()
	if err := p.Fit(sys.Net, sys.TrainSet()); err != nil {
		t.Fatal(err)
	}
	if s := p.Score(sys.Net, x); s < 0 || s > 1 {
		t.Fatalf("portfolio score %v", s)
	}
}
