module safexplain

go 1.22
