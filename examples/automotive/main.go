// Automotive: an ADS perception channel facing sensor degradation.
//
// The scenario the paper's introduction motivates: a camera-based object
// classifier in a vehicle whose sensor degrades mid-drive (noise, then
// occlusion, then gross failure). A bare DL channel keeps emitting
// confident wrong answers; the supervised channel detects the degradation
// and rejects to the safe state, and the evidence log captures every
// incident for the safety case.
//
//	go run ./examples/automotive
package main

import (
	"fmt"
	"log"

	"safexplain"
	"safexplain/internal/data"
	"safexplain/internal/supervisor"
	"safexplain/internal/trace"
)

func main() {
	sys, err := safexplain.Build(safexplain.Config{
		CaseStudy: safexplain.Automotive(),
		Pattern:   safexplain.PatternSupervised,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	test := sys.TestSet()

	phases := []struct {
		name string
		set  *safexplain.Dataset
	}{
		{"nominal camera", test},
		{"noise (low light)", data.WithGaussianNoise(test, 0.25, 100)},
		{"occlusion (dirt on lens)", data.WithOcclusion(test, 8, 101)},
		{"gross failure (exposure fault)", data.WithInversion(test)},
	}

	fmt.Println("phase                          answered  correct  rejected")
	for _, ph := range phases {
		answered, correct, rejected := 0, 0, 0
		n := 40
		if ph.set.Len() < n {
			n = ph.set.Len()
		}
		for i := 0; i < n; i++ {
			x, label := ph.set.Sample(i)
			v := sys.Process(x)
			if v.Decision.Fallback {
				rejected++
				continue
			}
			answered++
			if v.Class == label {
				correct++
			}
		}
		fmt.Printf("%-30s %8d %8d %9d\n", ph.name, answered, correct, rejected)
	}

	incidents := sys.Log.ByKind(trace.KindIncident)
	fmt.Printf("\n%d incidents logged during the drive; chain valid: %v\n",
		len(incidents), sys.Log.Verify() == nil)

	// Slow degradation is a different beast: no single frame trips the
	// per-frame monitor, but the score *level* creeps up. The CUSUM drift
	// detector watches for exactly that and raises a maintenance alarm.
	var calib []float64
	for i := 0; i < sys.TrainSet().Len(); i++ {
		x, _ := sys.TrainSet().Sample(i)
		calib = append(calib, sys.Monitor.Sup.Score(sys.Net, x))
	}
	drift, err := supervisor.NewDriftDetector(calib, 0.5, 12)
	if err != nil {
		log.Fatal(err)
	}
	alarmFrame := -1
	frame := 0
	for _, sigma := range []float64{0, 0, 0.05, 0.08, 0.12, 0.16} { // slowly fogging lens
		stretch := data.WithGaussianNoise(test, sigma, uint64(200+frame))
		for i := 0; i < 20; i++ {
			x, _ := stretch.Sample(i)
			if drift.Observe(sys.Monitor.Sup.Score(sys.Net, x)) && alarmFrame < 0 {
				alarmFrame = frame
			}
			frame++
		}
	}
	if alarmFrame >= 0 {
		fmt.Printf("\ndrift alarm raised at frame %d/%d as the lens slowly fogged\n", alarmFrame, frame)
	} else {
		fmt.Printf("\nno drift alarm in %d frames\n", frame)
	}

	fmt.Println("\nThe safety argument: as the sensor degrades, the supervised channel")
	fmt.Println("trades availability (rejections) for safety (few confident wrong answers),")
	fmt.Println("slow drift raises a maintenance alarm, and every event is auditable evidence.")
}
