// Space: vision-based attitude determination under hard real-time
// constraints.
//
// A spacecraft runs a DL attitude classifier inside a 10 ms control frame
// alongside guidance and telemetry tasks. The example shows the pillar-P4
// workflow end to end: measure the inference workload on a time-randomized
// platform model, derive a pWCET budget with MBPTA, build a cyclic
// schedule from that budget, and watch the executive handle an induced
// overload by shedding the low-criticality task — while single-event
// upsets in the model memory are outvoted by a TMR pattern.
//
//	go run ./examples/space
package main

import (
	"fmt"
	"log"

	"safexplain"
	"safexplain/internal/mbpta"
	"safexplain/internal/nn"
	"safexplain/internal/platform"
	"safexplain/internal/rt"
	"safexplain/internal/safety"
)

func main() {
	sys, err := safexplain.Build(safexplain.Config{
		CaseStudy: safexplain.Space(),
		Pattern:   safexplain.PatternSupervised,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Timing: budget the inference task by pWCET, not by mean+margin.
	var randomized platform.Config
	for _, c := range platform.StandardConfigs() {
		if c.Name == "time-randomized" {
			randomized = c
		}
	}
	w := platform.NewCNNWorkload()
	campaign := platform.Campaign(randomized, w, 400, 1)
	analysis, err := mbpta.FitChecked(campaign, 20, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	budget := uint64(analysis.PWCET(1e-9))
	fmt.Printf("inference workload: max observed %.0f cycles, pWCET(1e-9) %d cycles\n",
		analysis.MaxObs, budget)

	// 2. Schedule: 10ms frame at 100 MHz = 1e6 cycles.
	const frameCycles = 1_000_000
	run := uint64(0)
	inference := &rt.Task{
		Name: "attitude-inference", Budget: budget, Criticality: rt.CritHigh,
		Run: func(int) uint64 {
			run++
			return platform.Run(randomized, w, 9000+run)
		},
	}
	guidance := &rt.Task{
		Name: "guidance", Budget: 200_000, Criticality: rt.CritHigh,
		Run: func(int) uint64 { return 150_000 },
	}
	telemetry := &rt.Task{
		Name: "telemetry", Budget: 150_000, Criticality: rt.CritLow,
		Run: func(f int) uint64 {
			if f == 40 { // a telemetry burst blows the frame once
				return 900_000
			}
			return 100_000
		},
	}
	exec, err := rt.NewExecutive(rt.Config{FrameBudget: frameCycles, MinCriticality: rt.CritMedium},
		inference, guidance, telemetry)
	if err != nil {
		log.Fatal(err)
	}
	rep := exec.RunFrames(100)
	fmt.Printf("\ncyclic schedule over 100 frames: %s\n", rep)
	fmt.Printf("inference deadline misses: %d (pWCET budget held)\n",
		rep.PerTaskMisses["attitude-inference"])
	fmt.Printf("telemetry burst handled by shedding %d low-criticality slots\n", rep.ShedSlots)

	// 3. Radiation: single-event upsets in one replica, outvoted by TMR.
	hashBefore := mustHash(sys.Net)
	corrupted, err := safety.CorruptWeights(sys.Net, 40, 2)
	if err != nil {
		log.Fatal(err)
	}
	replica, err := sys.Net.Clone("replica")
	if err != nil {
		log.Fatal(err)
	}
	tmr := safety.TMR{
		A: safety.NetChannel{Net: corrupted},
		B: safety.NetChannel{Net: sys.Net},
		C: safety.NetChannel{Net: replica},
	}
	bare := safety.Assess(safety.SingleChannel{C: safety.NetChannel{Net: corrupted}}, sys.TestSet(), nil)
	voted := safety.Assess(tmr, sys.TestSet(), nil)
	fmt.Printf("\nSEU fault containment (40 bit flips in one replica):\n")
	fmt.Printf("  corrupted channel alone: hazard rate %.3f\n", bare.HazardRate())
	fmt.Printf("  2oo3 TMR voter:          hazard rate %.3f\n", voted.HazardRate())

	// Fault injection works on a copy: the deployed model's content hash
	// is unchanged — the kind of claim the evidence log can carry.
	fmt.Printf("\noriginal model intact after injection: %v\n", mustHash(sys.Net) == hashBefore)
}

func mustHash(n *nn.Network) string {
	h, err := nn.Hash(n)
	if err != nil {
		log.Fatal(err)
	}
	return h
}
