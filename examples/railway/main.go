// Railway: obstacle detection with explainable rejections and a
// certification evidence trail.
//
// A trackside/onboard obstacle detector must justify every decision to an
// assessor. This example streams a mixed sequence of nominal frames,
// novel objects the model was never trained on, and sensor faults through
// a Simplex-protected system, then demonstrates the explainability and
// traceability workflow: attribution maps for the decisions, supervisor
// comparison on the novel-object condition, and the upstream provenance
// trace of the deployment artefact.
//
//	go run ./examples/railway
package main

import (
	"fmt"
	"log"

	"safexplain"
	"safexplain/internal/data"
	"safexplain/internal/supervisor"
	"safexplain/internal/trace"
	"safexplain/internal/xai"
)

func main() {
	sys, err := safexplain.Build(safexplain.Config{
		CaseStudy: safexplain.Railway(),
		Pattern:   safexplain.PatternSimplex,
		Seed:      23,
	})
	if err != nil {
		log.Fatal(err)
	}
	test := sys.TestSet()

	// 1. Mixed stream: nominal, unseen objects, sensor faults.
	novel := data.UnseenClass(20, 0.05, 300)
	faulty := data.WithOcclusion(test, 10, 301)
	fmt.Println("stream               frames  delivered  degraded")
	for _, seg := range []struct {
		name string
		set  *data.Set
		n    int
	}{
		{"nominal", test, 30},
		{"novel objects", novel, 20},
		{"sensor fault", faulty, 20},
	} {
		delivered, degraded := 0, 0
		for i := 0; i < seg.n && i < seg.set.Len(); i++ {
			x, _ := seg.set.Sample(i)
			if v := sys.Process(x); v.Decision.Fallback {
				degraded++
			} else {
				delivered++
			}
		}
		fmt.Printf("%-20s %6d %10d %9d\n", seg.name, seg.n, delivered, degraded)
	}
	fmt.Println("\n(degraded frames deliver the conservative 'obstacle' verdict — the")
	fmt.Println(" train brakes rather than trusting a prediction the monitor rejected)")

	// 2. Explainability: compare explainer faithfulness on one decision.
	x, label := test.Sample(1)
	class, _ := sys.Net.Predict(x)
	fmt.Printf("\nexplaining frame 1 (truth=%s, predicted=%s):\n",
		sys.Classes[label], sys.Classes[class])
	for _, e := range xai.Standard() {
		attr := e.Explain(sys.Net, x, class)
		del := xai.DeletionAUC(sys.Net, x, class, attr, 16)
		ins := xai.InsertionAUC(sys.Net, x, class, attr, 16)
		fmt.Printf("  %-22s deletionAUC %.3f  insertionAUC %.3f\n", e.Name(), del, ins)
	}

	// 3. Supervisor comparison on the novel-object condition.
	fmt.Println("\nsupervisor AUROC on novel objects:")
	for _, sup := range supervisor.Standard() {
		if err := sup.Fit(sys.Net, sys.TrainSet()); err != nil {
			log.Fatal(err)
		}
		rep, err := supervisor.EvaluateOOD(sup, sys.Net, test, novel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %.3f\n", sup.Name(), rep.AUROC)
	}

	// 4. Traceability: provenance of the deployment artefact.
	fmt.Println("\nprovenance of the deployment record:")
	for _, e := range sys.Log.ByKind(trace.KindDeployment) {
		fmt.Printf("  %s depends on:\n", e.ID)
		for _, up := range sys.Log.TraceUpstream(e.ID) {
			fmt.Printf("    %s\n", up)
		}
	}
	fmt.Printf("\nevidence chain valid: %v (%d records)\n",
		sys.Log.Verify() == nil, sys.Log.Len())
}
