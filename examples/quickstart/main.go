// Quickstart: build a certified railway obstacle-detection component with
// one call, run it, and inspect its evidence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"safexplain"
)

func main() {
	// Build runs the whole safety lifecycle: data freeze, deterministic
	// training, int8 FUSA engine, trust monitor, explainability check,
	// pWCET timing analysis, safety-pattern assembly — all recorded in a
	// hash-chained evidence log.
	sys, err := safexplain.Build(safexplain.Config{
		CaseStudy: safexplain.Railway(),
		Pattern:   safexplain.PatternSimplex,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %q: classes %v\n\n", sys.Name, sys.Classes)

	// Process a frame: the decision comes through the Simplex pattern —
	// the DL primary when the monitor trusts it, a verified conservative
	// fallback otherwise.
	x, label := sys.TestSet().Sample(0)
	v := sys.Process(x)
	fmt.Printf("frame 0: truth=%s decision=%s (fallback=%v, %s)\n",
		sys.Classes[label], sys.Classes[v.Class], v.Decision.Fallback, v.Decision.Reason)

	// Explain it: which pixels drove the prediction.
	attr := sys.Explain(x)
	best, total := 0.0, 0.0
	for _, a := range attr.Data() {
		if a > 0 {
			total += float64(a)
			if a > 0 {
				best = max(best, float64(a))
			}
		}
	}
	fmt.Printf("attribution: %d elements, peak %.4f, positive mass %.4f\n",
		attr.Len(), best, total)

	// Certification snapshot.
	r := sys.Readiness()
	fmt.Printf("\nreadiness %.2f — evidence records %d, chain valid %v, requirements %d/%d\n",
		r.Score(), r.EvidenceCount, r.ChainOK, r.RequirementsCov, r.RequirementsAll)
	for _, st := range sys.Stages {
		fmt.Printf("  stage %-14s metric %.3f\n", st.Stage, st.Metric)
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
